/**
 * @file
 * Calendar shootout: binary-heap EventQueue vs BucketCalendar under
 * the classic hold model, at steady-state populations from 1e4 to
 * 1e7 pending events.
 *
 * The hold model is the standard calendar-queue benchmark: pre-fill
 * the calendar to population N, then repeatedly pop the earliest
 * event and push a replacement at `popped.time + increment`, so the
 * population "holds" at N while simulated time advances. That is
 * exactly the access pattern of a saturated megascale run — the
 * pending set stays bounded while millions of events stream through
 * — and it is where the heap's O(log n) per operation separates
 * from the bucket queue's amortized O(1).
 *
 * Before timing, each population is cross-checked for determinism:
 * both calendars are fed the identical push sequence and must pop
 * the identical (time, kind, node, seq) sequence — the tie-break
 * contract that makes the simulation schedule independent of the
 * calendar choice. Any divergence aborts the benchmark.
 *
 * Results go to stdout as a table and to BENCH_calendar.json with
 * events/sec (one hold = one pop + one push = two events) for both
 * implementations at every population.
 *
 * Usage: micro_calendar [--max-pending N] [--holds N] [--seed S]
 *        [--out BENCH_calendar.json]
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "sim/event_queue.hh"
#include "util/args.hh"
#include "util/json.hh"
#include "util/logging.hh"
#include "util/rng.hh"
#include "util/table.hh"

using namespace dysta;

namespace {

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

/**
 * A deterministic stream of plausible simulation events: mostly
 * layer completions a short exponential hop ahead, with occasional
 * same-time arrivals and far-future node changes (the sparse tail
 * that exercises the bucket queue's wraparound scan).
 */
SimEvent
nextEvent(Rng& rng, double base_time)
{
    SimEvent ev;
    double roll = rng.uniform();
    if (roll < 0.05) {
        ev.kind = SimEventKind::Arrival;
        ev.time = base_time; // same-instant tie: seq must decide
    } else if (roll < 0.97) {
        ev.kind = SimEventKind::LayerComplete;
        ev.node = static_cast<int>(rng.uniformInt(0, 15));
        ev.time = base_time + rng.exponential(1.0);
    } else {
        ev.kind = SimEventKind::NodeChange;
        ev.node = static_cast<int>(rng.uniformInt(0, 15));
        ev.time = base_time + rng.uniform(50.0, 500.0);
    }
    return ev;
}

/**
 * Feed both calendars one identical push/pop interleaving and
 * require identical pop sequences. Uses a smaller population than
 * the timed run; the property is size-independent.
 */
void
crossCheck(uint64_t seed)
{
    EventQueue heap;
    BucketCalendar bucket;
    Rng rng(seed);
    double now = 0.0;
    for (int i = 0; i < 5000; ++i) {
        SimEvent ev = nextEvent(rng, now);
        heap.push(ev);
        bucket.push(ev);
    }
    for (int i = 0; i < 20000; ++i) {
        SimEvent a = heap.pop();
        SimEvent b = bucket.pop();
        fatalIf(a.time != b.time || a.kind != b.kind ||
                    a.node != b.node || a.seq != b.seq,
                "micro_calendar: heap and bucket calendars diverged "
                "at pop " +
                    std::to_string(i) + " (heap t=" +
                    std::to_string(a.time) + " seq=" +
                    std::to_string(a.seq) + ", bucket t=" +
                    std::to_string(b.time) + " seq=" +
                    std::to_string(b.seq) + ")");
        now = a.time;
        SimEvent next = nextEvent(rng, now);
        heap.push(next);
        bucket.push(next);
    }
    while (!heap.empty()) {
        SimEvent a = heap.pop();
        SimEvent b = bucket.pop();
        fatalIf(a.time != b.time || a.kind != b.kind ||
                    a.node != b.node || a.seq != b.seq,
                "micro_calendar: calendars diverged during drain");
    }
    fatalIf(!bucket.empty(),
            "micro_calendar: bucket calendar still holds events "
            "after the heap drained");
}

struct HoldResult
{
    double eventsPerSec = 0.0;
    double holdSec = 0.0;
};

/** Time `holds` pop+push cycles at steady population `pending`. */
HoldResult
runHold(Calendar& cal, size_t pending, long holds, uint64_t seed)
{
    cal.clear();
    Rng rng(seed);
    double now = 0.0;
    for (size_t i = 0; i < pending; ++i)
        cal.push(nextEvent(rng, now));

    auto t0 = std::chrono::steady_clock::now();
    for (long i = 0; i < holds; ++i) {
        SimEvent ev = cal.pop();
        now = ev.time;
        cal.push(nextEvent(rng, now));
    }
    double dt = secondsSince(t0);
    HoldResult r;
    r.holdSec = dt;
    // One hold = one pop + one push = two calendar events.
    r.eventsPerSec = 2.0 * static_cast<double>(holds) / dt;
    return r;
}

std::string
rateStr(double per_sec)
{
    return AsciiTable::num(per_sec / 1e6, 2) + " M/s";
}

} // namespace

int
main(int argc, char** argv)
{
    ArgParser args("micro_calendar",
                   "Hold-model shootout of the binary-heap and "
                   "bucket event calendars at 1e4..1e7 pending "
                   "events, with a determinism cross-check.");
    args.addInt("--max-pending", 10000000,
                "largest steady-state population to measure (the "
                "sweep runs 1e4, 1e5, ... up to this; CI uses a "
                "smaller cap)");
    args.addInt("--holds", 2000000,
                "pop+push cycles per measurement (capped at 4x the "
                "population so small sizes finish instantly)");
    args.addInt("--seed", 42, "event-stream seed");
    args.addString("--out", "BENCH_calendar.json",
                   "report path ('' = skip the JSON report)");
    args.parse(argc, argv);

    long max_pending = args.getInt("--max-pending");
    long holds_cap = args.getInt("--holds");
    uint64_t seed = static_cast<uint64_t>(args.getInt("--seed"));
    fatalIf(max_pending < 10000,
            "micro_calendar: --max-pending must be >= 10000");

    std::printf("Cross-checking calendar determinism...\n");
    crossCheck(seed);
    std::printf("OK: heap and bucket pop identical (time, kind, "
                "node, seq) sequences.\n\n");

    std::vector<size_t> sizes;
    for (long n = 10000; n <= max_pending; n *= 10)
        sizes.push_back(static_cast<size_t>(n));

    struct Row
    {
        size_t pending;
        HoldResult heap;
        HoldResult bucket;
        long holds;
    };
    std::vector<Row> rows;

    AsciiTable table("Hold-model throughput (pop+push cycles at "
                     "steady population)");
    table.setHeader(
        {"pending", "holds", "heap", "bucket", "speedup"});
    for (size_t pending : sizes) {
        long holds =
            std::min<long>(holds_cap,
                           4 * static_cast<long>(pending));
        Row row;
        row.pending = pending;
        row.holds = holds;
        {
            EventQueue heap;
            row.heap = runHold(heap, pending, holds, seed);
        }
        {
            BucketCalendar bucket;
            row.bucket = runHold(bucket, pending, holds, seed);
        }
        rows.push_back(row);
        table.addRow({std::to_string(pending),
                      std::to_string(holds),
                      rateStr(row.heap.eventsPerSec),
                      rateStr(row.bucket.eventsPerSec),
                      AsciiTable::num(row.bucket.eventsPerSec /
                                          row.heap.eventsPerSec,
                                      2) +
                          "x"});
    }
    table.print();
    std::printf(
        "Read: the heap pays O(log n) per operation, so its rate "
        "falls as the pending population grows; the bucket queue "
        "resizes itself toward ~O(1) events per bucket and holds "
        "its rate roughly flat.\n");

    const std::string out = args.getString("--out");
    if (!out.empty()) {
        JsonWriter json;
        json.beginObject();
        json.field("bench", "micro_calendar");
        json.field("seed", static_cast<int64_t>(seed));
        json.beginArray("results");
        for (const Row& row : rows) {
            for (int which = 0; which < 2; ++which) {
                const HoldResult& r =
                    which == 0 ? row.heap : row.bucket;
                json.beginObject();
                json.field("calendar", which == 0 ? "heap"
                                                  : "bucket");
                json.field("pending",
                           static_cast<uint64_t>(row.pending));
                json.field("holds",
                           static_cast<int64_t>(row.holds));
                json.field("events_per_sec", r.eventsPerSec);
                json.field("wall_sec", r.holdSec);
                json.endObject();
            }
        }
        json.endArray();
        json.endObject();
        fatalIf(!json.writeFile(out),
                "micro_calendar: cannot write " + out);
        std::printf("Wrote %s\n", out.c_str());
    }
    return 0;
}
