#include "util/table.hh"

#include <algorithm>
#include <cstdio>

#include "util/logging.hh"

namespace dysta {

AsciiTable::AsciiTable(std::string title_text)
    : title(std::move(title_text))
{
}

void
AsciiTable::setHeader(const std::vector<std::string>& hdr)
{
    header = hdr;
}

void
AsciiTable::addRow(const std::vector<std::string>& row)
{
    panicIf(!header.empty() && row.size() != header.size(),
            "AsciiTable: row width mismatch in table '" + title + "'");
    rows.push_back(row);
}

std::string
AsciiTable::num(double v, int decimals)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, v);
    return buf;
}

std::string
AsciiTable::render() const
{
    size_t cols = header.size();
    for (const auto& r : rows)
        cols = std::max(cols, r.size());

    std::vector<size_t> width(cols, 0);
    auto account = [&](const std::vector<std::string>& r) {
        for (size_t c = 0; c < r.size(); ++c)
            width[c] = std::max(width[c], r[c].size());
    };
    if (!header.empty())
        account(header);
    for (const auto& r : rows)
        account(r);

    auto renderRow = [&](const std::vector<std::string>& r) {
        std::string line = "|";
        for (size_t c = 0; c < cols; ++c) {
            std::string cell = c < r.size() ? r[c] : "";
            line += " " + cell +
                    std::string(width[c] - cell.size(), ' ') + " |";
        }
        return line + "\n";
    };

    std::string sep = "+";
    for (size_t c = 0; c < cols; ++c)
        sep += std::string(width[c] + 2, '-') + "+";
    sep += "\n";

    std::string out = "== " + title + " ==\n" + sep;
    if (!header.empty()) {
        out += renderRow(header);
        out += sep;
    }
    for (const auto& r : rows)
        out += renderRow(r);
    out += sep;
    return out;
}

void
AsciiTable::print() const
{
    std::fputs(render().c_str(), stdout);
    std::fflush(stdout);
}

} // namespace dysta
