// Fixture: clean counterpart — randomness flows through an explicitly
// seeded generator passed in by the caller (the util/rng pattern).
struct Rng {
    unsigned long long state = 1;
    double uniform();
};

double drawJitter(Rng& rng)
{
    return rng.uniform();
}
