/**
 * @file
 * MTBF/MTTR alternating-renewal fault injection (see failure.hh).
 */

#include "chaos/failure.hh"

#include "util/logging.hh"

namespace dysta {

void
MtbfFailureProcess::reset(const std::vector<NodeProfile>& nodes,
                          uint64_t seed)
{
    // A dedicated stream: mixed away from the workload seeds (which
    // use seed * golden + small constants) so chaos never correlates
    // with arrival or sparsity draws.
    rng = Rng(seed * 0xD1342543DE82EF95ULL + 0x9E6C63D0876A9A47ULL);
    units.clear();
    pending.clear();

    if (cfg.byDomain) {
        // Group by NodeProfile::domain, first-appearance order.
        // Nodes without a domain never group: each gets a singleton
        // unit (the "" entries below are placeholders that are never
        // matched against).
        std::vector<std::string> domains;
        for (size_t i = 0; i < nodes.size(); ++i) {
            const std::string& domain = nodes[i].domain;
            size_t unit = units.size();
            if (!domain.empty()) {
                for (size_t d = 0; d < domains.size(); ++d)
                    if (domains[d] == domain)
                        unit = d;
            }
            if (unit == units.size()) {
                domains.push_back(domain);
                units.push_back(Unit{});
            }
            units[unit].members.push_back(static_cast<int>(i));
        }
    } else {
        for (size_t i = 0; i < nodes.size(); ++i) {
            Unit unit;
            unit.members.push_back(static_cast<int>(i));
            units.push_back(unit);
        }
    }

    // First time-to-failure per unit, drawn in unit order.
    for (Unit& unit : units)
        unit.at = cfg.start + cfg.up.sample(rng);
}

bool
MtbfFailureProcess::next(NodeEvent& out)
{
    if (pending.empty()) {
        if (units.empty())
            return false;
        // Earliest unit; ties by lowest unit index.
        size_t best = 0;
        for (size_t u = 1; u < units.size(); ++u)
            if (units[u].at < units[best].at)
                best = u;
        Unit& unit = units[best];
        double t = unit.at;
        unit.up = !unit.up;
        NodeEventKind kind =
            unit.up ? NodeEventKind::Recover : NodeEventKind::Fail;
        for (int member : unit.members)
            pending.push_back({t, member, kind});
        // Dwell in the new state decides the next transition.
        unit.at =
            t + (unit.up ? cfg.up : cfg.down).sample(rng);
    }
    out = pending.front();
    pending.pop_front();
    return true;
}

} // namespace dysta
