/**
 * @file
 * Extending the framework with a custom scheduling policy.
 *
 * Implements "LAS" (least attained service: the request that has
 * executed the least runs next — a classic size-oblivious policy) by
 * subclassing Scheduler, and pits it against SJF and Dysta on the
 * multi-AttNN workload. Subclasses only need selectNext(); the
 * arrival/progress callbacks are optional hooks (call the base-class
 * implementation when overriding them), and policies with a
 * heap-orderable key can additionally override pickNext() with an
 * IndexedMinHeap-backed fast path — see sched/fcfs.cc for the
 * pattern; the default pickNext() simply delegates to selectNext().
 *
 * Usage: custom_scheduler [--requests N]
 */

#include <cstdio>

#include "exp/experiments.hh"
#include "sched/scheduler.hh"
#include "util/table.hh"

using namespace dysta;

namespace {

/**
 * Least-attained-service policy: no profiling information at all,
 * just each request's attained execution time. Good for unknown job
 * sizes; pays for it with extra preemptions.
 */
class LasScheduler : public Scheduler
{
  public:
    std::string name() const override { return "LAS"; }

    size_t
    selectNext(const std::vector<const Request*>& ready,
               double now) override
    {
        (void)now;
        size_t best = 0;
        for (size_t i = 1; i < ready.size(); ++i) {
            if (ready[i]->executedTime < ready[best]->executedTime)
                best = i;
        }
        return best;
    }
};

} // namespace

int
main(int argc, char** argv)
{
    int requests = argInt(argc, argv, "--requests", 600);

    BenchSetup setup;
    setup.includeCnn = false;
    auto ctx = makeBenchContext(setup);

    WorkloadConfig wl;
    wl.kind = WorkloadKind::MultiAttNN;
    wl.arrivalRate = 30.0;
    wl.sloMultiplier = 10.0;
    wl.numRequests = requests;
    wl.seed = 5;

    AsciiTable t("Custom policy vs built-ins, multi-AttNN @ 30 req/s");
    t.setHeader({"scheduler", "ANTT", "violation [%]",
                 "preemptions"});

    LasScheduler las;
    std::vector<Scheduler*> policies;
    auto sjf = makeSchedulerByName("SJF", *ctx, wl.kind);
    auto dysta = makeSchedulerByName("Dysta", *ctx, wl.kind);
    policies.push_back(&las);
    policies.push_back(sjf.get());
    policies.push_back(dysta.get());

    for (Scheduler* policy : policies) {
        EngineResult r = runOne(*ctx, wl, *policy);
        t.addRow({policy->name(), AsciiTable::num(r.metrics.antt, 2),
                  AsciiTable::num(r.metrics.violationRate * 100, 1),
                  std::to_string(r.preemptions)});
    }
    t.print();
    std::printf("LAS approximates SJF without profiles but preempts "
                "far more; Dysta adds deadline- and sparsity-"
                "awareness on top of profiled estimates.\n");
    return 0;
}
