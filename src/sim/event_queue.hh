/**
 * @file
 * The global event calendar of the discrete-event simulation core.
 *
 * One binary heap of typed events drives every engine in the repo:
 *
 *  - Arrival: a request reaches the cluster front door;
 *  - LayerComplete: the in-flight layer of one node finishes (the
 *    zero-count monitor fires here; block boundaries are where the
 *    next dispatch decision happens);
 *  - NodeChange: a node's availability changes (drain / fail /
 *    recover) — sorted after same-instant layer completions (the
 *    layer genuinely finished before the node died) and before the
 *    decision sweep (a recovered node joins the same instant's
 *    dispatch);
 *  - Decision: a coalesced sweep that starts blocks on idle nodes
 *    after the arrivals of one instant have all been placed —
 *    preserving the admit-then-select ordering for simultaneous
 *    arrivals.
 *
 * Ties are broken deterministically by (time, kind, node, push
 * order): arrivals before completions before node changes before
 * decisions, completions by lowest node id — so a fixed workload
 * seed always reproduces the same schedule, independent of fleet
 * size or policy cost.
 */

#ifndef DYSTA_SIM_EVENT_QUEUE_HH
#define DYSTA_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <vector>

#include "sched/request.hh"

namespace dysta {

/** Calendar event types, in tie-break priority order. */
enum class SimEventKind : uint8_t
{
    Arrival = 0,
    LayerComplete = 1,
    NodeChange = 2,
    Decision = 3,
};

/** Availability transitions a NodeChange event can carry. */
enum class NodeEventKind : uint8_t
{
    Drain = 0,   ///< stop accepting new work, finish the queue
    Fail = 1,    ///< drop dead; queued work returns to the dispatcher
    Recover = 2, ///< back in service
};

/** One calendar entry. */
struct SimEvent
{
    double time = 0.0;
    SimEventKind kind = SimEventKind::Decision;
    /** Node owning the completing layer / changing state; -1 else. */
    int node = -1;
    /** Arriving request; nullptr for non-arrival events. */
    Request* req = nullptr;
    /** Availability transition (NodeChange events only). */
    NodeEventKind nodeEvent = NodeEventKind::Drain;
    /**
     * Node fail-epoch at push time (LayerComplete events only): a
     * mismatch against the node's current epoch marks the event as
     * stale — its layer was abandoned by an intervening failure.
     */
    uint64_t epoch = 0;
    /** Push order, assigned by the queue (final tie-break). */
    uint64_t seq = 0;
};

/** Deterministic min-heap calendar. */
class EventQueue
{
  public:
    bool empty() const { return heap.empty(); }
    size_t size() const { return heap.size(); }
    void clear();

    /** Schedule an event (its `seq` is overwritten). */
    void push(SimEvent ev);

    /** Earliest event. @pre !empty() */
    const SimEvent& top() const;

    /** Remove and return the earliest event. @pre !empty() */
    SimEvent pop();

  private:
    std::vector<SimEvent> heap;
    uint64_t nextSeq = 0;
};

/** Calendar ordering: time, kind, node, push order. */
bool operator<(const SimEvent& a, const SimEvent& b);

} // namespace dysta

#endif // DYSTA_SIM_EVENT_QUEUE_HH
