#include "core/regression_predictor.hh"

#include <algorithm>

#include "util/logging.hh"

namespace dysta {

LearnedLatencyPredictor
LearnedLatencyPredictor::fit(const TraceSet& traces)
{
    fatalIf(traces.empty(),
            "LearnedLatencyPredictor::fit: empty trace set");

    // Gather (mean-density-so-far, remaining-latency) pairs per
    // count of monitored observations. "Remaining" is measured after
    // the current layer completes, matching the instant Alg. 3 makes
    // its estimate.
    std::vector<std::vector<std::pair<double, double>>> points;
    for (const auto& sample : traces.all()) {
        double density_sum = 0.0;
        size_t observed = 0;
        double executed = 0.0;
        for (const auto& layer : sample.layers) {
            executed += layer.latency;
            if (!layer.monitored())
                continue;
            density_sum +=
                std::clamp(1.0 - layer.monitoredSparsity, 0.0, 1.0);
            ++observed;
            if (points.size() < observed)
                points.resize(observed);
            points[observed - 1].push_back(
                {density_sum / static_cast<double>(observed),
                 sample.totalLatency - executed});
        }
    }
    fatalIf(points.empty(),
            "LearnedLatencyPredictor::fit: no monitored layers");

    LearnedLatencyPredictor model;
    model.slope.resize(points.size());
    model.intercept.resize(points.size());
    for (size_t j = 0; j < points.size(); ++j) {
        const auto& pts = points[j];
        double n = static_cast<double>(pts.size());
        double sx = 0.0;
        double sy = 0.0;
        double sxx = 0.0;
        double sxy = 0.0;
        for (const auto& [x, y] : pts) {
            sx += x;
            sy += y;
            sxx += x * x;
            sxy += x * y;
        }
        double denom = n * sxx - sx * sx;
        if (denom <= 1e-18 || pts.size() < 2) {
            // Degenerate (constant density): fall back to the mean.
            model.slope[j] = 0.0;
            model.intercept[j] = n > 0.0 ? sy / n : 0.0;
        } else {
            model.slope[j] = (n * sxy - sx * sy) / denom;
            model.intercept[j] =
                (sy - model.slope[j] * sx) / n;
        }
    }
    return model;
}

double
LearnedLatencyPredictor::predictRemaining(size_t observed,
                                          double mean_density) const
{
    panicIf(observed == 0,
            "LearnedLatencyPredictor: need at least one observation");
    size_t j = std::min(observed, slope.size()) - 1;
    return slope[j] * mean_density + intercept[j];
}

} // namespace dysta
