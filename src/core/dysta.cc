#include "core/dysta.hh"

#include <algorithm>

#include "util/logging.hh"

namespace dysta {

DystaScheduler::DystaScheduler(const ModelInfoLut& lut,
                               DystaConfig config)
    : lut(&lut), cfg(config)
{
}

std::string
DystaScheduler::name() const
{
    if (!cfg.dynamicLevel)
        return "Dysta-w/o-sparse";
    if (!cfg.sparsityAware)
        return "Dysta-static-dyn";
    return "Dysta";
}

void
DystaScheduler::reset()
{
    state.clear();
}

void
DystaScheduler::onArrival(const Request& req, double now)
{
    (void)now;
    const ModelInfo& info = lut->lookup(req.modelName, req.pattern);

    // Alg. 1: Lat from the LUT; slack against the request's SLO;
    // initial score balances ANTT (latency term) and violations
    // (slack term) through beta.
    double lat = info.avgLatency;
    double slo_rel = req.deadline - req.arrival;
    double slack = slo_rel - lat;
    double score = lat + cfg.beta * slack;

    auto [it, inserted] = state.try_emplace(
        req.id, info, cfg.predictor);
    panicIf(!inserted, "Dysta: duplicate request id");
    it->second.staticScore = score;
}

void
DystaScheduler::onLayerComplete(const Request& req, double now,
                                double monitored_sparsity)
{
    (void)now;
    if (!cfg.dynamicLevel || !cfg.sparsityAware)
        return;
    // Alg. 3 line 3: only when the monitor captured the layer.
    if (monitored_sparsity < 0.0)
        return;
    auto it = state.find(req.id);
    panicIf(it == state.end(), "Dysta: unknown request");
    // Zero-count monitor feeds the per-request predictor (Alg. 3).
    it->second.predictor.observe(req.nextLayer - 1, monitored_sparsity);
}

void
DystaScheduler::onComplete(const Request& req, double now)
{
    (void)now;
    state.erase(req.id);
}

double
DystaScheduler::dynamicScore(const Request& req, double now,
                             size_t queue_size) const
{
    auto it = state.find(req.id);
    panicIf(it == state.end(), "Dysta: unknown request");
    const RequestState& rs = it->second;

    // T_remain: sparsity-refined for requests with monitored layers,
    // the profiled average for untouched ones (gamma == 1).
    double remaining = rs.predictor.predictRemaining(req.nextLayer);

    double isol = std::max(estIsolated(*lut, req), 1e-12);
    double slack = std::clamp(req.deadline - now - remaining,
                              cfg.slackFloor,
                              cfg.slackCapFactor * isol);
    double wait = std::max(0.0, now - req.lastRunEnd);
    double penalty = std::min(wait / isol, cfg.penaltyCap) /
                     static_cast<double>(queue_size);

    return remaining + cfg.eta * (slack + penalty);
}

size_t
DystaScheduler::selectNext(const std::vector<const Request*>& ready,
                           double now)
{
    size_t best = 0;
    double best_score = 0.0;
    for (size_t i = 0; i < ready.size(); ++i) {
        double score;
        if (cfg.dynamicLevel) {
            score = dynamicScore(*ready[i], now, ready.size());
        } else {
            auto it = state.find(ready[i]->id);
            panicIf(it == state.end(), "Dysta: unknown request");
            score = it->second.staticScore;
        }
        if (i == 0 || score < best_score) {
            best = i;
            best_score = score;
        }
    }
    return best;
}

DystaConfig
dystaWithoutSparseConfig()
{
    DystaConfig cfg;
    cfg.sparsityAware = false;
    cfg.dynamicLevel = false;
    return cfg;
}

DystaConfig
tunedDystaConfig(bool cnn_workload)
{
    // Grid-searched on the benchmark (bench/ablation_hyperparams):
    // CNN slacks span seconds and benefit from a stronger deadline
    // tilt; AttNN workloads run closer to saturation where the
    // shortest-predicted-remaining ordering dominates.
    DystaConfig cfg;
    cfg.eta = cnn_workload ? 0.06 : 0.02;
    return cfg;
}

} // namespace dysta
