/**
 * @file
 * ASCII Gantt renderers.
 *
 * Two views share one bucketing scheme (fixed-width columns over a
 * time window):
 *
 *  - `renderGantt`: the legacy per-request view over single-engine
 *    `ScheduleEvent`s — one row per request, '#' where it holds the
 *    accelerator. Makes preemption behaviour visible in examples.
 *  - `renderTelemetryGantt`: the cluster view over a recorded
 *    telemetry event stream — one lane per *node*, each execution
 *    slice drawn with a character identifying the request
 *    (id mod 36 -> '0'-'9a-z'), '.' idle and 'x' while the node is
 *    down. Works for any fleet because it consumes the same events
 *    the Chrome-trace exporter does (`sdysta --gantt`).
 */

#ifndef DYSTA_EXP_GANTT_HH
#define DYSTA_EXP_GANTT_HH

#include <string>
#include <vector>

#include "obs/telemetry.hh"
#include "sched/engine.hh"

namespace dysta {

/** Gantt rendering options. */
struct GanttConfig
{
    /** Chart width in character columns. */
    size_t columns = 72;
    /** Start of the rendered window (seconds). */
    double windowStart = 0.0;
    /** End of the window; <= start means "until the last event". */
    double windowEnd = 0.0;
    /** Maximum number of request rows (longest-running first). */
    size_t maxRows = 24;
};

/**
 * Render schedule events as an ASCII Gantt chart.
 * @param events   engine events (EngineConfig::recordEvents)
 * @param requests the requests the events refer to (for labels)
 */
std::string renderGantt(const std::vector<ScheduleEvent>& events,
                        const std::vector<Request>& requests,
                        GanttConfig config = {});

/**
 * Render a recorded telemetry run as a per-node ASCII Gantt chart
 * (`maxRows` caps the node lanes, not requests). Requires
 * `recordEvents`; fatal() otherwise.
 * @param node_names one display name per node ("node<i>" fallback)
 */
std::string
renderTelemetryGantt(const Telemetry& telemetry,
                     const std::vector<std::string>& node_names,
                     GanttConfig config = {});

} // namespace dysta

#endif // DYSTA_EXP_GANTT_HH
