#include "sched/sjf.hh"

namespace dysta {

size_t
SjfScheduler::selectNext(const std::vector<const Request*>& ready,
                         double now)
{
    (void)now;
    size_t best = 0;
    double best_remaining = estRemaining(*lut, *ready[0]);
    for (size_t i = 1; i < ready.size(); ++i) {
        double remaining = estRemaining(*lut, *ready[i]);
        if (remaining < best_remaining) {
            best_remaining = remaining;
            best = i;
        }
    }
    return best;
}

} // namespace dysta
