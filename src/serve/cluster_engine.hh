/**
 * @file
 * Discrete-event multi-accelerator serving simulator.
 *
 * A ClusterEngine runs N accelerator nodes, each executing the
 * layer-granular per-node scheduling loop of `SchedulerEngine`, fed
 * by a front-end `Dispatcher` that places every arriving request on
 * one node. Optional SLO-aware admission control sheds requests whose
 * LUT-estimated completion would already miss their deadline at
 * arrival; shed counts are reported through `Metrics::shed`.
 *
 * The simulation is event-driven over two event types — request
 * arrivals and per-node layer completions — processed in global time
 * order with deterministic tie-breaking (arrivals first, then lowest
 * node id), so a fixed workload seed always reproduces the same
 * schedule.
 */

#ifndef DYSTA_SERVE_CLUSTER_ENGINE_HH
#define DYSTA_SERVE_CLUSTER_ENGINE_HH

#include <functional>
#include <memory>
#include <vector>

#include "core/model_info.hh"
#include "sched/metrics.hh"
#include "serve/dispatcher.hh"
#include "serve/node.hh"

namespace dysta {

/** SLO-aware admission control knobs. */
struct AdmissionConfig
{
    /** Shed hopeless requests at the front door. */
    bool enabled = false;
    /**
     * Conservativeness multiplier on the estimated completion delay:
     * a node can serve a request when
     *     now + margin * (backlog + isolated) / speed <= deadline.
     * When the dispatcher's chosen node fails the test, the request
     * falls back to the node with the smallest estimated delay and
     * is shed only if that node fails too. Values < 1 admit
     * optimistically, > 1 shed early.
     */
    double margin = 1.0;
};

/** Cluster topology and simulation knobs. */
struct ClusterConfig
{
    /** One profile per node (size = fleet size). */
    std::vector<NodeProfile> nodes;
    /** Record per-layer schedule events (memory-heavy; off for sweeps). */
    bool recordEvents = false;
    /** Front-door load shedding. */
    AdmissionConfig admission;
    /**
     * LUT used for admission estimates (not owned). Required when
     * admission is enabled; unused otherwise.
     */
    const ModelInfoLut* lut = nullptr;
};

/** Homogeneous fleet of `n` reference-speed nodes. */
ClusterConfig homogeneousCluster(size_t n);

/** One scheduled execution slot on one node (optional Gantt record). */
struct ClusterEvent
{
    int nodeId = -1;
    int requestId = -1;
    size_t layer = 0;
    double start = 0.0;
    double end = 0.0;
};

/** Result of one cluster run. */
struct ClusterResult
{
    /** Metrics over completed requests; shed requests in `shed`. */
    Metrics metrics;
    /** Preemptions summed over nodes. */
    size_t preemptions = 0;
    /** Scheduling decisions summed over nodes. */
    size_t decisions = 0;
    /** Completed-request count per node (load balance view). */
    std::vector<size_t> perNodeCompleted;
    std::vector<ClusterEvent> events;
};

/**
 * Builds one per-node scheduling policy. Invoked once per node per
 * run so every node owns independent policy state.
 */
using PolicyFactory = std::function<std::unique_ptr<Scheduler>(
    const NodeProfile& profile, int node_id)>;

/** Multi-accelerator, layer-granular serving simulator. */
class ClusterEngine
{
  public:
    explicit ClusterEngine(ClusterConfig config);

    /**
     * Serve all requests to completion (or shed them) under
     * `dispatcher`, with per-node policies from `make_policy`.
     * Requests are mutated in place (progress, finish times, shed
     * flags).
     * @pre every request has a trace with at least one layer
     */
    ClusterResult run(std::vector<Request>& requests,
                      Dispatcher& dispatcher,
                      const PolicyFactory& make_policy) const;

  private:
    ClusterConfig cfg;
};

} // namespace dysta

#endif // DYSTA_SERVE_CLUSTER_ENGINE_HH
