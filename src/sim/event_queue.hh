/**
 * @file
 * The global event calendar of the discrete-event simulation core.
 *
 * One binary heap of typed events drives every engine in the repo:
 *
 *  - Arrival: a request reaches the cluster front door;
 *  - LayerComplete: the in-flight layer of one node finishes (the
 *    zero-count monitor fires here; block boundaries are where the
 *    next dispatch decision happens);
 *  - NodeChange: a node's availability changes (drain / fail /
 *    recover) — sorted after same-instant layer completions (the
 *    layer genuinely finished before the node died) and before the
 *    decision sweep (a recovered node joins the same instant's
 *    dispatch);
 *  - Decision: a coalesced sweep that starts blocks on idle nodes
 *    after the arrivals of one instant have all been placed —
 *    preserving the admit-then-select ordering for simultaneous
 *    arrivals;
 *  - Timeout: a request's per-attempt deadline allowance expired
 *    (chaos engine; retried or shed by the core);
 *  - Hedge: the hedged-dispatch delay of a request elapsed — the
 *    core duplicates it onto a second node if still unfinished.
 *
 * The chaos kinds sort *after* every seed kind at the same instant,
 * so runs that never push them keep the exact pre-chaos pop order —
 * the chaos-off bit-identity guarantee.
 *
 * Ties are broken deterministically by (time, kind, node, push
 * order): arrivals before completions before node changes before
 * decisions, completions by lowest node id — so a fixed workload
 * seed always reproduces the same schedule, independent of fleet
 * size or policy cost.
 */

#ifndef DYSTA_SIM_EVENT_QUEUE_HH
#define DYSTA_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sched/request.hh"

namespace dysta {

/** Calendar event types, in tie-break priority order. */
enum class SimEventKind : uint8_t
{
    Arrival = 0,
    LayerComplete = 1,
    NodeChange = 2,
    Decision = 3,
    Timeout = 4,
    Hedge = 5,
    /**
     * A held batch formation's fill wait expired (batching only;
     * sorts after every seed kind, so batching-off runs keep the
     * exact pre-batching pop order).
     */
    BatchRelease = 6,
};

/** Availability transitions a NodeChange event can carry. */
enum class NodeEventKind : uint8_t
{
    Drain = 0,   ///< stop accepting new work, finish the queue
    Fail = 1,    ///< drop dead; queued work returns to the dispatcher
    Recover = 2, ///< back in service
};

/** One calendar entry. */
struct SimEvent
{
    double time = 0.0;
    SimEventKind kind = SimEventKind::Decision;
    /** Node owning the completing layer / changing state; -1 else. */
    int node = -1;
    /** Arriving request; nullptr for non-arrival events. */
    Request* req = nullptr;
    /** Availability transition (NodeChange events only). */
    NodeEventKind nodeEvent = NodeEventKind::Drain;
    /**
     * Staleness stamp at push time. LayerComplete: the node's
     * fail-epoch — a mismatch against the node's current epoch marks
     * the layer as abandoned by an intervening failure. Timeout /
     * Hedge: the request's cancel-epoch — a mismatch means the
     * attempt the event was armed for is gone (retried, completed or
     * shed).
     */
    uint64_t epoch = 0;
    /**
     * Request id at push time (Timeout/Hedge only): together with
     * `epoch` it detects a recycled request-arena slot, so a stale
     * chaos event can never act on the slot's new tenant.
     */
    int rid = -1;
    /**
     * Emitted by the run's FailureProcess (NodeChange only): the
     * core refills the one-pending chaos event when this pops.
     */
    bool chaos = false;
    /** Push order, assigned by the queue (final tie-break). */
    uint64_t seq = 0;
};

/**
 * The calendar contract every implementation must honour: push
 * assigns monotonically increasing `seq` numbers, pop returns the
 * minimum under the (time, kind, node, seq) total order. Two
 * implementations fed the same push sequence therefore produce the
 * same pop sequence — the property tests/test_streaming.cc checks —
 * so the simulation schedule is independent of the calendar choice.
 */
class Calendar
{
  public:
    virtual ~Calendar() = default;

    virtual bool empty() const = 0;
    virtual size_t size() const = 0;
    /** Drop all events and reset the seq counter. */
    virtual void clear() = 0;

    /** Schedule an event (its `seq` is overwritten). */
    virtual void push(SimEvent ev) = 0;

    /** Remove and return the earliest event. @pre !empty() */
    virtual SimEvent pop() = 0;
};

/** Deterministic min-heap calendar. */
class EventQueue final : public Calendar
{
  public:
    bool empty() const override { return heap.empty(); }
    size_t size() const override { return heap.size(); }
    void clear() override;

    void push(SimEvent ev) override;

    /** Earliest event. @pre !empty() */
    const SimEvent& top() const;

    SimEvent pop() override;

  private:
    std::vector<SimEvent> heap;
    uint64_t nextSeq = 0;
};

/**
 * Bucket (calendar-queue) implementation: events hash into
 * fixed-width time buckets, each kept as a small min-heap under the
 * full event order; pop scans forward from the current bucket's
 * time window — one O(1) front probe per bucket, since the front is
 * always the bucket's earliest year — wrapping around "years" for
 * events far in the future, and the bucket array resizes itself
 * (Brown's calendar-queue scheme, with the width tuned to the
 * head-local event density) to keep ~O(1) events per bucket. Same
 * deterministic tie-break contract as the heap — pop sequences are
 * identical event for event — but with near-O(1) push/pop under the
 * hold-model access pattern of large steady-state runs, where a
 * binary heap pays O(log n) per operation.
 */
class BucketCalendar final : public Calendar
{
  public:
    BucketCalendar();

    bool empty() const override { return count == 0; }
    size_t size() const override { return count; }
    void clear() override;

    void push(SimEvent ev) override;
    SimEvent pop() override;

    /** Current bucket-array size (introspection for the bench). */
    size_t bucketCount() const { return buckets.size(); }

  private:
    std::vector<std::vector<SimEvent>> buckets;
    size_t count = 0;
    uint64_t nextSeq = 0;
    /** Bucket time width, in seconds. */
    double width = 1.0;
    /** Absolute (unwrapped) index of the current time window. */
    uint64_t currentWindow = 0;

    uint64_t windowOf(double time) const;
    void insert(const SimEvent& ev);
    void resize(size_t new_bucket_count);
    void maybeGrow();
    void maybeShrink();
};

/** The calendar implementations runSimulation can run on. */
enum class CalendarKind : uint8_t
{
    Heap = 0,   ///< binary heap (the seed behaviour)
    Bucket = 1, ///< self-resizing bucket/calendar queue
};

std::string toString(CalendarKind kind);

/**
 * Parse "heap" / "bucket" (case-sensitive, the serialized forms of
 * toString). fatal() on anything else, naming the valid values.
 */
CalendarKind calendarKindFromName(const std::string& name);

/** Construct an empty calendar of the given kind. */
std::unique_ptr<Calendar> makeCalendar(CalendarKind kind);

/** Calendar ordering: time, kind, node, push order. */
bool operator<(const SimEvent& a, const SimEvent& b);

} // namespace dysta

#endif // DYSTA_SIM_EVENT_QUEUE_HH
