#include "sched/fcfs.hh"

#include "util/logging.hh"

namespace dysta {

void
FcfsScheduler::reset()
{
    Scheduler::reset();
    queue.clear();
}

void
FcfsScheduler::onArrival(const Request& req, double now)
{
    Scheduler::onArrival(req, now);
    queue.push(&req, {req.arrival, req.id});
}

void
FcfsScheduler::onComplete(const Request& req, double now)
{
    Scheduler::onComplete(req, now);
    if (queue.contains(req.id))
        queue.erase(req.id);
}

size_t
FcfsScheduler::selectNext(const std::vector<const Request*>& ready,
                          double now)
{
    (void)now;
    size_t best = 0;
    for (size_t i = 1; i < ready.size(); ++i) {
        if (ready[i]->arrival < ready[best]->arrival ||
            (ready[i]->arrival == ready[best]->arrival &&
             ready[i]->id < ready[best]->id)) {
            best = i;
        }
    }
    return best;
}

Request*
FcfsScheduler::pickNext(const std::vector<Request*>& ready, double now)
{
    (void)now;
    panicIf(queue.size() != ready.size(),
            "FcfsScheduler: ready queue out of sync with engine "
            "(missing onArrival/onComplete callbacks?)");
    // The heap holds pointers into the engine's mutable request set;
    // the constness is an artifact of the const callback views.
    return const_cast<Request*>(queue.top());
}

} // namespace dysta
