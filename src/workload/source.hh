/**
 * @file
 * Lazy workload generation: the streaming twin of generateWorkload.
 *
 * generateWorkload() materializes every Request of a run up front,
 * so memory grows linearly with the request count. A
 * WorkloadArrivalSource performs the exact same per-request RNG
 * sequence — same seed derivation, same draw order (arrival time,
 * model, sparsity pattern, trace sample) — but one request at a
 * time, on demand, into RequestArena slots that retired requests
 * return to. A streaming run over N requests therefore produces the
 * bit-identical schedule to a materialized run over
 * generateWorkload()'s vector while keeping only the in-flight set
 * alive, which is what makes >=10M-request scenarios run at flat
 * RSS (scenarios/megascale.scn, bench/bench_megascale.cc).
 */

#ifndef DYSTA_WORKLOAD_SOURCE_HH
#define DYSTA_WORKLOAD_SOURCE_HH

#include <memory>
#include <vector>

#include "sim/request_arena.hh"
#include "sim/source.hh"
#include "util/rng.hh"
#include "workload/workload.hh"

namespace dysta {

/**
 * Generates the requests of one WorkloadConfig lazily, recycling
 * retired requests. The registry must outlive the source (requests
 * reference its traces), exactly as with generateWorkload().
 */
class WorkloadArrivalSource final : public ArrivalSource
{
  public:
    /** fatal() on the same invalid configs generateWorkload rejects. */
    WorkloadArrivalSource(const WorkloadConfig& config,
                          const TraceRegistry& registry);

    size_t total() const override;
    Request* next() override;
    void retire(Request* req, double now) override;

    /** Pool introspection (peak live set, slot reuse counters). */
    const RequestArena& arena() const { return pool; }

  private:
    WorkloadConfig config;
    const TraceRegistry* registry;
    Rng rng;
    std::vector<std::string> models;
    std::vector<SparsityPattern> patterns;
    std::unique_ptr<ArrivalProcess> arrivals;
    RequestArena pool;
    int produced = 0;
    double lastArrival = 0.0;
};

} // namespace dysta

#endif // DYSTA_WORKLOAD_SOURCE_HH
