/**
 * @file
 * Ablation bench: sweep Dysta's hyperparameters (eta, beta, predictor
 * strategy) on both workloads. This is the design-choice ablation
 * DESIGN.md calls out; it also documents how the defaults were
 * selected. SJF and Planaria rows anchor the trade-off space.
 *
 * Usage: ablation_hyperparams [--requests N] [--seeds K]
 */

#include <cstdio>

#include "exp/experiments.hh"
#include "sched/planaria.hh"
#include "sched/sjf.hh"
#include "util/table.hh"

using namespace dysta;

int
main(int argc, char** argv)
{
    int requests = argInt(argc, argv, "--requests", 800);
    int seeds = argInt(argc, argv, "--seeds", 3);

    auto ctx = makeBenchContext();

    const double etas[] = {0.0, 0.02, 0.05, 0.1, 0.3, 1.0};
    const double betas[] = {0.0, 0.25, 0.5, 0.75, 1.0};

    for (WorkloadKind kind :
         {WorkloadKind::MultiAttNN, WorkloadKind::MultiCNN}) {
        WorkloadConfig wl;
        wl.kind = kind;
        wl.arrivalRate = kind == WorkloadKind::MultiAttNN ? 30.0 : 3.0;
        wl.numRequests = requests;
        wl.seed = 42;

        AsciiTable table("Dysta eta sweep, " + toString(kind));
        table.setHeader({"config", "ANTT", "violation [%]"});

        for (const char* anchor : {"SJF", "Planaria"}) {
            Metrics m = runAveraged(*ctx, wl, anchor, seeds);
            table.addRow({anchor, AsciiTable::num(m.antt, 3),
                          AsciiTable::num(m.violationRate * 100, 2)});
        }

        for (double eta : etas) {
            DystaConfig cfg;
            cfg.eta = eta;
            DystaScheduler dysta(ctx->lut, cfg);
            Metrics avg;
            for (int s = 0; s < seeds; ++s) {
                WorkloadConfig w = wl;
                w.seed = wl.seed + static_cast<uint64_t>(s);
                EngineResult r = runOne(*ctx, w, dysta);
                avg.antt += r.metrics.antt;
                avg.violationRate += r.metrics.violationRate;
            }
            avg.antt /= seeds;
            avg.violationRate /= seeds;
            table.addRow({"Dysta eta=" + AsciiTable::num(eta, 2),
                          AsciiTable::num(avg.antt, 3),
                          AsciiTable::num(avg.violationRate * 100, 2)});
        }
        table.print();

        AsciiTable btable("Dysta-w/o-sparse beta sweep (static level), " +
                          toString(kind));
        btable.setHeader({"config", "ANTT", "violation [%]"});
        for (double beta : betas) {
            DystaConfig cfg = dystaWithoutSparseConfig();
            cfg.beta = beta;
            DystaScheduler dysta(ctx->lut, cfg);
            Metrics avg;
            for (int s = 0; s < seeds; ++s) {
                WorkloadConfig w = wl;
                w.seed = wl.seed + static_cast<uint64_t>(s);
                EngineResult r = runOne(*ctx, w, dysta);
                avg.antt += r.metrics.antt;
                avg.violationRate += r.metrics.violationRate;
            }
            avg.antt /= seeds;
            avg.violationRate /= seeds;
            btable.addRow({"beta=" + AsciiTable::num(beta, 2),
                           AsciiTable::num(avg.antt, 3),
                           AsciiTable::num(avg.violationRate * 100, 2)});
        }
        btable.print();
    }
    return 0;
}
