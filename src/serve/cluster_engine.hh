/**
 * @file
 * Discrete-event multi-accelerator serving simulator — compatibility
 * facade over the unified simulation core (src/sim/core.hh).
 *
 * A ClusterEngine runs N accelerator nodes, each executing the
 * layer-granular per-node scheduling loop, fed by a front-end
 * `Dispatcher` that places every arriving request on one node.
 * Optional SLO-aware admission control sheds requests whose
 * estimated completion (through the LatencyEstimator layer) would
 * already miss their deadline at arrival; shed counts are reported
 * through `Metrics::shed`.
 *
 * The run itself is `runSimulation`: one global event calendar over
 * arrival / layer-complete / decision events with deterministic
 * tie-breaking, so a fixed workload seed always reproduces the same
 * schedule. A single-accelerator `SchedulerEngine` run is the same
 * core with one node — the two engines cannot drift apart.
 */

#ifndef DYSTA_SERVE_CLUSTER_ENGINE_HH
#define DYSTA_SERVE_CLUSTER_ENGINE_HH

#include <vector>

#include "serve/dispatcher.hh"
#include "serve/node.hh"
#include "sim/core.hh"

namespace dysta {

/** Cluster topology and simulation knobs. */
struct ClusterConfig
{
    /** One profile per node (size = fleet size). */
    std::vector<NodeProfile> nodes;
    /** Record per-layer schedule events (memory-heavy; off for sweeps). */
    bool recordEvents = false;
    /** Front-door load shedding. */
    AdmissionConfig admission;
    /**
     * LUT used for admission estimates (not owned). Required when
     * admission is enabled; unused otherwise.
     */
    const ModelInfoLut* lut = nullptr;
    /**
     * Optional admission estimator override (not owned); see
     * SimConfig::admissionEstimator.
     */
    const LatencyEstimator* admissionEstimator = nullptr;
    /** Scheduled drain/fail/recover transitions (see SimConfig). */
    std::vector<NodeEvent> nodeEvents;
    /** Fate of started requests displaced by a node failure. */
    RestartPolicy onFailure = RestartPolicy::Restart;
    /** Optional telemetry sink (not owned; see SimConfig). */
    Telemetry* telemetry = nullptr;
    /** Calendar implementation (see SimConfig::calendar). */
    CalendarKind calendar = CalendarKind::Heap;
    /**
     * Metrics accumulation of the streaming run overload (see
     * SimConfig::metricsKind); ignored by the vector overload.
     */
    MetricsKind metricsKind = MetricsKind::Exact;

    // --- chaos engine (src/chaos/) -----------------------------------
    /** Stochastic fault injector (not owned; see SimConfig::chaos). */
    FailureProcess* chaos = nullptr;
    /** Seed of the chaos RNG stream (see SimConfig::chaosSeed). */
    uint64_t chaosSeed = 1;
    /** Deadline-timeout retry policy. */
    RetryConfig retry;
    /** Tail-latency hedged dispatch. */
    HedgeConfig hedge;
    /** Brown-out admission escalation (requires admission). */
    BrownoutConfig brownout;
    /** Priority-tier weights (empty = single tier 0). */
    std::vector<double> tierWeights;

    // --- dynamic batching (src/batch/) -------------------------------
    /** Batch formation knobs (see SimConfig::batching). */
    BatchConfig batching;
};

/** Homogeneous fleet of `n` reference-speed nodes. */
ClusterConfig homogeneousCluster(size_t n);

/** Fleet built from explicit (possibly heterogeneous) profiles. */
ClusterConfig clusterFromProfiles(std::vector<NodeProfile> profiles);

/** Result of one cluster run (the simulation core's result). */
using ClusterResult = SimResult;

/** Multi-accelerator, layer-granular serving simulator. */
class ClusterEngine
{
  public:
    explicit ClusterEngine(ClusterConfig config);

    /**
     * Serve all requests to completion (or shed them) under
     * `dispatcher`, with per-node policies from `make_policy`.
     * Requests are mutated in place (progress, finish times, shed
     * flags).
     * @pre every request has a trace with at least one layer
     */
    ClusterResult run(std::vector<Request>& requests,
                      Dispatcher& dispatcher,
                      const PolicyFactory& make_policy) const;

    /**
     * Streaming overload: requests are pulled lazily from `source`
     * and retired back to it, keeping memory bounded by the
     * in-flight set (see the ArrivalSource runSimulation overload).
     * Bit-identical schedule to the vector overload for the same
     * workload seed.
     */
    ClusterResult run(ArrivalSource& source, Dispatcher& dispatcher,
                      const PolicyFactory& make_policy) const;

  private:
    ClusterConfig cfg;
};

} // namespace dysta

#endif // DYSTA_SERVE_CLUSTER_ENGINE_HH
