/**
 * @file
 * Mobile personal-assistant scenario (Table 3): a phone NPU serves
 * machine translation (BART, GPT-2) and question answering (BERT)
 * concurrently on a Sanger-class sparse attention accelerator.
 *
 * Demonstrates the full pipeline at API level: Phase-1 profiling into
 * a TraceRegistry, LUT construction, workload generation, and a
 * comparison of Dysta against SJF with per-model turnaround
 * percentiles — the user-visible responsiveness of each app.
 *
 * Usage: mobile_assistant [--requests N] [--rate R]
 */

#include <cstdio>
#include <map>
#include <vector>

#include "exp/experiments.hh"
#include "util/stats.hh"
#include "util/table.hh"

using namespace dysta;

int
main(int argc, char** argv)
{
    int requests = argInt(argc, argv, "--requests", 600);
    double rate = argDouble(argc, argv, "--rate", 30.0);

    std::printf("Profiling assistant models on the Sanger model...\n");
    BenchSetup setup;
    setup.includeCnn = false;
    auto ctx = makeBenchContext(setup);

    WorkloadConfig wl;
    wl.kind = WorkloadKind::MultiAttNN;
    wl.arrivalRate = rate;
    wl.sloMultiplier = 10.0;
    wl.numRequests = requests;
    wl.seed = 7;

    for (const char* policy : {"SJF", "Dysta"}) {
        auto sched = makeSchedulerByName(policy, *ctx, wl.kind);
        std::vector<Request> reqs =
            generateWorkload(wl, ctx->registry);
        SchedulerEngine engine;
        EngineResult result = engine.run(reqs, *sched);

        // Per-application responsiveness.
        std::map<std::string, std::vector<double>> turnaround;
        std::map<std::string, int> violations;
        std::map<std::string, int> count;
        for (const auto& req : reqs) {
            turnaround[req.modelName].push_back(
                (req.finishTime - req.arrival) * 1e3);
            violations[req.modelName] += req.violated();
            ++count[req.modelName];
        }

        AsciiTable t(std::string("Personal assistant under ") +
                     policy + " @ " + AsciiTable::num(rate, 0) +
                     " req/s");
        t.setHeader({"app (model)", "median [ms]", "p99 [ms]",
                     "violations [%]"});
        for (auto& [model, values] : turnaround) {
            std::string app = model == "bert"
                ? "Q&A (bert)"
                : "translation (" + model + ")";
            t.addRow({app, AsciiTable::num(percentile(values, 50), 1),
                      AsciiTable::num(percentile(values, 99), 1),
                      AsciiTable::num(100.0 * violations[model] /
                                          count[model], 1)});
        }
        t.addRow({"-- overall ANTT",
                  AsciiTable::num(result.metrics.antt, 2), "",
                  AsciiTable::num(result.metrics.violationRate * 100,
                                  1)});
        t.print();
    }
    std::printf("Dysta keeps tail latency and violations down by "
                "tracking each prompt's attention sparsity online.\n");
    return 0;
}
