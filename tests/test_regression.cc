/**
 * @file
 * Unit tests for the learned (least-squares) latency predictor and
 * its comparison against the Alg. 3 heuristics.
 */

#include <gtest/gtest.h>

#include "core/latency_predictor.hh"
#include "core/model_info.hh"
#include "core/regression_predictor.hh"
#include "models/zoo.hh"
#include "sparsity/dataset.hh"
#include "trace/profiler.hh"
#include "util/rng.hh"
#include "util/stats.hh"

using namespace dysta;

namespace {

/** Traces where total latency is exactly linear in layer density. */
TraceSet
linearWorldTraces(int n, uint64_t seed)
{
    TraceSet set("lin", ModelFamily::CNN, SparsityPattern::Dense);
    Rng rng(seed);
    for (int i = 0; i < n; ++i) {
        double density = rng.uniform(0.3, 0.9);
        SampleTrace s;
        // Three monitored layers, each with latency 2*density.
        for (int l = 0; l < 3; ++l)
            s.layers.push_back({2.0 * density, 1.0 - density});
        s.finalize();
        set.add(std::move(s));
    }
    return set;
}

} // namespace

TEST(Learned, RecoversExactLinearRelation)
{
    TraceSet train = linearWorldTraces(200, 1);
    LearnedLatencyPredictor model = LearnedLatencyPredictor::fit(train);
    ASSERT_EQ(model.stages(), 3u);
    // Remaining after the j-th of three layers = 2 * density * (3-j):
    // the fit must be exact at any progress and density.
    for (size_t j = 1; j <= 3; ++j) {
        double n_left = static_cast<double>(3 - j);
        EXPECT_NEAR(model.predictRemaining(j, 0.5), 1.0 * n_left,
                    1e-9);
        EXPECT_NEAR(model.predictRemaining(j, 0.8), 1.6 * n_left,
                    1e-9);
    }
}

TEST(Learned, DegenerateConstantDensityFallsBackToMean)
{
    TraceSet set("const", ModelFamily::CNN, SparsityPattern::Dense);
    for (int i = 0; i < 20; ++i) {
        SampleTrace s;
        s.layers.push_back({0.5 + 0.01 * i, 0.5}); // same density
        s.finalize();
        set.add(std::move(s));
    }
    LearnedLatencyPredictor model = LearnedLatencyPredictor::fit(set);
    // Single layer: remaining after it is always 0, and the density
    // input is ignored (slope 0).
    EXPECT_NEAR(model.predictRemaining(1, 0.5), 0.0, 1e-9);
    EXPECT_NEAR(model.predictRemaining(1, 0.9), 0.0, 1e-9);
}

TEST(Learned, ObservedCountClampsToTrainedRange)
{
    TraceSet train = linearWorldTraces(50, 2);
    LearnedLatencyPredictor model = LearnedLatencyPredictor::fit(train);
    EXPECT_DOUBLE_EQ(model.predictRemaining(3, 0.5),
                     model.predictRemaining(99, 0.5));
}

TEST(Learned, ZeroObservationsPanics)
{
    TraceSet train = linearWorldTraces(50, 3);
    LearnedLatencyPredictor model = LearnedLatencyPredictor::fit(train);
    EXPECT_DEATH(model.predictRemaining(0, 0.5), "at least one");
}

TEST(Learned, EmptyTraceSetIsFatal)
{
    TraceSet empty("x", ModelFamily::CNN, SparsityPattern::Dense);
    EXPECT_EXIT(LearnedLatencyPredictor::fit(empty),
                ::testing::ExitedWithCode(1), "empty");
}

TEST(Learned, CoefficientFootprintIsSmallButNonTrivial)
{
    TraceSet train = linearWorldTraces(50, 4);
    LearnedLatencyPredictor model = LearnedLatencyPredictor::fit(train);
    EXPECT_EQ(model.coefficientBytes(), 3u * 2 * 4);
}

TEST(Learned, BeatsHeuristicOnHeldOutBert)
{
    // The paper's premise: learned predictors are more accurate but
    // too costly for the hardware scheduler. Verify the accuracy
    // half of that premise end-to-end on BERT traces.
    ModelDesc bert = makeBertBase();
    SangerModel sanger;
    ProfileConfig cfg;
    cfg.numSamples = 400;
    cfg.seed = 301;
    TraceSet train = profileAttn(bert, squadProfile(), sanger, cfg);
    cfg.seed = 302;
    TraceSet test = profileAttn(bert, squadProfile(), sanger, cfg);

    ModelInfoLut lut;
    lut.addFromTrace(train);
    const ModelInfo& info = lut.lookup("bert", SparsityPattern::Dense);
    LearnedLatencyPredictor learned =
        LearnedLatencyPredictor::fit(train);

    std::vector<double> pred_h;
    std::vector<double> pred_l;
    std::vector<double> ref;
    for (const auto& sample : test.all()) {
        SparseLatencyPredictor heuristic(info, {});
        double executed = 0.0;
        double density_sum = 0.0;
        size_t observed = 0;
        for (size_t l = 0; l < sample.layers.size(); ++l) {
            executed += sample.layers[l].latency;
            if (!sample.layers[l].monitored())
                continue;
            heuristic.observe(l, sample.layers[l].monitoredSparsity);
            density_sum += 1.0 - sample.layers[l].monitoredSparsity;
            ++observed;
            pred_h.push_back(executed +
                             heuristic.predictRemaining(l + 1));
            pred_l.push_back(executed + learned.predictRemaining(
                observed,
                density_sum / static_cast<double>(observed)));
            ref.push_back(sample.totalLatency);
        }
    }
    EXPECT_LT(rmse(pred_l, ref), rmse(pred_h, ref));
}
