#include "workload/cluster_spec.hh"

#include <cstdlib>
#include <sstream>
#include <unordered_map>

#include "util/logging.hh"

namespace dysta {

namespace {

std::vector<std::string>
splitList(const std::string& spec, char sep)
{
    std::vector<std::string> parts;
    std::stringstream in(spec);
    std::string part;
    while (std::getline(in, part, sep)) {
        if (!part.empty())
            parts.push_back(part);
    }
    return parts;
}

} // namespace

std::vector<std::string>
hwClassNames()
{
    return {"sanger", "sanger-lite", "eyeriss-xl", "eyeriss-v2"};
}

NodeHw
hwClassByName(const std::string& cls)
{
    NodeHw hw;
    hw.hwClass = cls;
    if (cls == "sanger") {
        // The reference: the full-size array the traces replay at 1x.
        hw.peCount = 1024;
        hw.clockHz = 530e6;
        hw.derate = 1.0;
    } else if (cls == "sanger-lite") {
        // Half the reconfigurable array, same clock: 0.5x.
        hw.peCount = 512;
        hw.clockHz = 530e6;
        hw.derate = 1.0;
    } else if (cls == "eyeriss-xl") {
        // A scaled-up row-stationary node (1024 PEs at 400 MHz);
        // the derate absorbs the dataflow's lower effective
        // utilization on this workload mix: ~0.38x.
        hw.peCount = 1024;
        hw.clockHz = 400e6;
        hw.derate = 0.5;
    } else if (cls == "eyeriss-v2") {
        // The paper's small prototype config (16 clusters x 12 PEs
        // at 200 MHz): ~0.07x — a genuinely weak fleet member.
        hw.peCount = 192;
        hw.clockHz = 200e6;
        hw.derate = 1.0;
    } else {
        fatal("hwClassByName: unknown hardware class '" + cls + "'");
    }
    return hw;
}

NodeProfile
nodeOfClass(const std::string& cls, size_t index)
{
    return nodeProfileFromHw(cls + std::to_string(index),
                             hwClassByName(cls));
}

std::vector<NodeProfile>
fleetFromSpec(const std::string& spec)
{
    std::vector<NodeProfile> fleet;
    // Per-class index spans the whole spec, so a class appearing in
    // several segments still yields unique node names.
    std::unordered_map<std::string, size_t> next_index;
    for (const std::string& part : splitList(spec, ',')) {
        // Optional correlated-fault-domain suffix: "sanger:2@rack0"
        // puts both nodes in domain "rack0" (see NodeProfile::domain).
        std::string body = part;
        std::string domain;
        size_t at = part.find('@');
        if (at != std::string::npos) {
            domain = part.substr(at + 1);
            fatalIf(domain.empty(),
                    "fleetFromSpec: empty domain in '" + part + "'");
            body = part.substr(0, at);
        }
        // Optional per-node scheduler suffix: "sanger:2=dysta" runs
        // both nodes under the dysta policy regardless of the
        // cluster-wide scheduler (see NodeProfile::scheduler).
        std::string scheduler;
        size_t eq = body.find('=');
        if (eq != std::string::npos) {
            scheduler = body.substr(eq + 1);
            fatalIf(scheduler.empty(),
                    "fleetFromSpec: empty scheduler in '" + part +
                        "'");
            body = body.substr(0, eq);
        }
        size_t colon = body.find(':');
        std::string cls = body.substr(0, colon);
        long count = 1;
        if (colon != std::string::npos) {
            char* end = nullptr;
            count = std::strtol(body.c_str() + colon + 1, &end, 10);
            fatalIf(end == nullptr || *end != '\0' || count <= 0,
                    "fleetFromSpec: malformed count in '" + part +
                        "'");
        }
        for (long i = 0; i < count; ++i) {
            NodeProfile profile =
                nodeOfClass(cls, next_index[cls]++);
            profile.domain = domain;
            profile.scheduler = scheduler;
            fleet.push_back(std::move(profile));
        }
    }
    fatalIf(fleet.empty(),
            "fleetFromSpec: empty fleet spec '" + spec + "'");
    return fleet;
}

std::vector<NodeEvent>
nodeEventsFromSpec(const std::string& spec)
{
    std::vector<NodeEvent> events;
    for (const std::string& part : splitList(spec, ',')) {
        size_t at = part.find('@');
        size_t colon = part.find(':', at == std::string::npos ? 0 : at);
        fatalIf(at == std::string::npos || colon == std::string::npos,
                "nodeEventsFromSpec: malformed event '" + part +
                    "' (want kind@time:node)");
        std::string kind = part.substr(0, at);
        NodeEvent ev;
        if (kind == "drain")
            ev.kind = NodeEventKind::Drain;
        else if (kind == "fail")
            ev.kind = NodeEventKind::Fail;
        else if (kind == "recover")
            ev.kind = NodeEventKind::Recover;
        else
            fatal("nodeEventsFromSpec: unknown event kind '" + kind +
                  "'");

        char* end = nullptr;
        const char* time_str = part.c_str() + at + 1;
        ev.time = std::strtod(time_str, &end);
        fatalIf(end == nullptr || end == time_str || *end != ':' ||
                    ev.time < 0.0,
                "nodeEventsFromSpec: malformed time in '" + part +
                    "'");
        ev.node = static_cast<int>(
            std::strtol(part.c_str() + colon + 1, &end, 10));
        fatalIf(end == nullptr || *end != '\0' || ev.node < 0,
                "nodeEventsFromSpec: malformed node in '" + part +
                    "'");
        events.push_back(ev);
    }
    return events;
}

} // namespace dysta
