#include "serve/cluster_engine.hh"

#include <algorithm>
#include <limits>

#include "util/logging.hh"

namespace dysta {

namespace {
constexpr double kNever = std::numeric_limits<double>::infinity();
} // namespace

ClusterConfig
homogeneousCluster(size_t n)
{
    ClusterConfig cfg;
    for (size_t i = 0; i < n; ++i) {
        cfg.nodes.push_back(
            referenceNodeProfile("node" + std::to_string(i)));
    }
    return cfg;
}

ClusterEngine::ClusterEngine(ClusterConfig config)
    : cfg(std::move(config))
{
    fatalIf(cfg.nodes.empty(), "ClusterEngine: need at least one node");
    fatalIf(cfg.admission.enabled && cfg.lut == nullptr,
            "ClusterEngine: admission control requires a ModelInfoLut");
    fatalIf(cfg.admission.enabled && cfg.admission.margin <= 0.0,
            "ClusterEngine: admission margin must be positive");
}

ClusterResult
ClusterEngine::run(std::vector<Request>& requests,
                   Dispatcher& dispatcher,
                   const PolicyFactory& make_policy) const
{
    ClusterResult result;
    dispatcher.reset();

    std::vector<std::unique_ptr<ServeNode>> nodes;
    nodes.reserve(cfg.nodes.size());
    for (size_t i = 0; i < cfg.nodes.size(); ++i) {
        auto policy = make_policy(cfg.nodes[i], static_cast<int>(i));
        panicIf(policy == nullptr,
                "ClusterEngine: policy factory returned null");
        nodes.push_back(std::make_unique<ServeNode>(
            static_cast<int>(i), cfg.nodes[i], std::move(policy)));
    }

    for (auto& req : requests) {
        panicIf(req.trace == nullptr || req.trace->layers.empty(),
                "ClusterEngine: request without a trace");
        req.shed = false;
        req.finishTime = -1.0;
    }

    // Arrival order (stable on ties by id).
    std::vector<Request*> pending;
    pending.reserve(requests.size());
    for (auto& req : requests)
        pending.push_back(&req);
    std::stable_sort(pending.begin(), pending.end(),
                     [](const Request* a, const Request* b) {
                         if (a->arrival != b->arrival)
                             return a->arrival < b->arrival;
                         return a->id < b->id;
                     });

    // LUT-estimated queued work on a node, in node-seconds; used by
    // admission control independently of the dispatcher's own view.
    // Mirrors LeastBacklogDispatcher::backlogEstimate's sparsity-
    // blind path — keep the two formulas in sync.
    auto lutBacklog = [&](const ServeNode& node) {
        double work = 0.0;
        for (const Request* r : node.queue()) {
            work += cfg.lut->lookup(r->modelName, r->pattern)
                        .estRemaining(r->nextLayer);
        }
        return work / node.profile().speedFactor;
    };

    size_t next_arrival = 0;
    size_t finished = 0;
    size_t shed_count = 0;

    while (finished + shed_count < requests.size()) {
        // Earliest in-flight layer completion (ties: lowest node id).
        ServeNode* event_node = nullptr;
        for (auto& n : nodes) {
            if (n->busy() &&
                (event_node == nullptr ||
                 n->eventTime() < event_node->eventTime())) {
                event_node = n.get();
            }
        }
        double t_node =
            event_node != nullptr ? event_node->eventTime() : kNever;
        double t_arrival = next_arrival < pending.size()
                               ? pending[next_arrival]->arrival
                               : kNever;
        panicIf(t_node == kNever && t_arrival == kNever,
                "ClusterEngine: deadlock with unfinished requests");

        if (t_arrival <= t_node) {
            // --- arrivals: place (or shed) every request arriving at
            // this instant before any dispatch decision, mirroring
            // SchedulerEngine's admit-then-select ordering for
            // simultaneous arrivals ---
            double now = t_arrival;
            while (next_arrival < pending.size() &&
                   pending[next_arrival]->arrival == now) {
                Request* req = pending[next_arrival++];

                size_t pick = dispatcher.selectNode(*req, nodes, now);
                panicIf(pick >= nodes.size(),
                        "ClusterEngine: dispatcher returned invalid "
                        "node");
                ServeNode& node = *nodes[pick];

                if (cfg.admission.enabled) {
                    const ModelInfo& info =
                        cfg.lut->lookup(req->modelName, req->pattern);
                    auto delayOn = [&](const ServeNode& n) {
                        return lutBacklog(n) +
                               info.avgLatency /
                                   n.profile().speedFactor;
                    };
                    if (now + cfg.admission.margin * delayOn(node) >
                        req->deadline) {
                        // The chosen node cannot make the deadline:
                        // fall back to the least-loaded node before
                        // shedding, so an admission-blind placement
                        // (e.g. round-robin) doesn't drop requests
                        // the rest of the fleet could still serve.
                        size_t best = 0;
                        double best_delay = 0.0;
                        for (size_t i = 0; i < nodes.size(); ++i) {
                            double delay = delayOn(*nodes[i]);
                            if (i == 0 || delay < best_delay) {
                                best = i;
                                best_delay = delay;
                            }
                        }
                        if (now + cfg.admission.margin * best_delay >
                            req->deadline) {
                            req->shed = true;
                            ++shed_count;
                            dispatcher.onShed(*req, now);
                            continue;
                        }
                        pick = best;
                    }
                }

                nodes[pick]->enqueue(req, now);
            }
            for (auto& node : nodes) {
                if (!node->busy() && node->outstanding() > 0)
                    node->beginBlock(now);
            }
        } else {
            // --- layer completion on event_node ---
            ServeNode& node = *event_node;
            double now = t_node;
            const Request* req = node.current();
            size_t layer_idx = req->nextLayer;

            if (cfg.recordEvents) {
                double lat = node.layerLatency(
                    req->trace->layers[layer_idx]);
                result.events.push_back({node.id(), req->id,
                                         layer_idx, now - lat, now});
            }

            Request* done = node.completeLayer();
            dispatcher.onLayerComplete(node, *req, now,
                                       node.lastMonitoredSparsity());
            if (done != nullptr) {
                dispatcher.onComplete(node, *done, now);
                ++finished;
            }

            // Continue the non-preemptible block, or make a fresh
            // dispatch decision at the block boundary.
            if (node.blockContinues())
                node.continueBlock(now);
            else if (node.outstanding() > 0)
                node.beginBlock(now);
        }
    }

    result.metrics = computeMetricsCompleted(requests);
    result.perNodeCompleted.reserve(nodes.size());
    for (const auto& n : nodes) {
        result.perNodeCompleted.push_back(n->completedCount());
        result.preemptions += n->preemptionCount();
        result.decisions += n->decisionCount();
    }
    return result;
}

} // namespace dysta
