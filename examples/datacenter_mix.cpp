/**
 * @file
 * Data-center visual perception scenario (Table 3), served from a
 * small accelerator *cluster*: object detection (SSD) and image
 * classification (VGG-16, ResNet-50) under bursty tenant traffic,
 * placed by a front-end dispatcher onto sparse CNN accelerator nodes
 * each running its own layer-granular scheduler.
 *
 * Two views an operator would look at, each one ScenarioSpec:
 *  1. capacity planning: offered load vs ANTT/violations for a fixed
 *     fleet, comparing front-end placement policies;
 *  2. load shedding: the same grid with SLO-aware admission control,
 *     trading shed requests for bounded tail turnaround.
 *
 * Usage: datacenter_mix [--requests N] [--nodes K] [--seed S]
 */

#include <cstdio>
#include <string>
#include <vector>

#include "api/report.hh"
#include "api/scenario.hh"
#include "util/args.hh"
#include "util/logging.hh"

using namespace dysta;

int
main(int argc, char** argv)
{
    ArgParser args("datacenter_mix",
                   "Bursty multi-CNN tenants on a small cluster: "
                   "placement policies and SLO-aware load shedding.");
    args.addInt("--requests", 500, "requests per workload");
    args.addInt("--nodes", 4, "fleet size");
    args.addInt("--seed", 21, "workload seed");
    args.parse(argc, argv);

    int nodes = args.getInt("--nodes");
    fatalIf(nodes <= 0, "datacenter_mix: --nodes must be positive");

    // Per-node saturation sits near 3.5 req/s (see the single-
    // accelerator sweep); scale the offered load with the fleet.
    // Rates below are the MMPP *base* rates — with the default burst
    // parameters (5x rate, 10s/2s dwells) the long-run offered load
    // is ~1.67x the base, so the sweep straddles saturation.
    ScenarioSpec spec;
    spec.name = "datacenter-mix";
    for (double per_node : {2.0, 3.0, 4.0, 5.0})
        spec.workloads.push_back(
            {WorkloadKind::MultiCNN, per_node * nodes});
    // Bursty tenants: 5x base rate during exponential on-phases.
    spec.arrivals = {"mmpp"};
    spec.fleets = {"sanger:" + std::to_string(nodes)};
    spec.dispatchers = {"round-robin", "least-outstanding",
                        "least-backlog"};
    spec.schedulers = {"Dysta"};
    spec.requests = args.getInt("--requests");
    spec.seed = static_cast<uint64_t>(args.getInt("--seed"));

    std::printf("Profiling perception models on Eyeriss-V2...\n");
    auto ctx = makeBenchContext(scenarioSetup(spec));
    ScenarioRunOptions options;
    options.ctx = ctx.get();

    // View 1: capacity planning without admission control.
    printScenarioTable(runScenario(spec, options));

    // View 2: the same grid with SLO-aware shedding at the door.
    spec.name = "datacenter-mix-admission";
    spec.admission = true;
    printScenarioTable(runScenario(spec, options));

    std::printf("Read: at low load any placement works; as the fleet "
                "saturates, backlog-aware placement absorbs tenant "
                "bursts that rotation spreads badly, and SLO-aware "
                "admission converts hopeless requests into bounded "
                "shed counts instead of unbounded queueing.\n");
    return 0;
}
