#include "exp/gantt.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>

#include "util/logging.hh"

namespace dysta {

std::string
renderGantt(const std::vector<ScheduleEvent>& events,
            const std::vector<Request>& requests, GanttConfig config)
{
    if (events.empty())
        return "(no schedule events recorded)\n";
    panicIf(config.columns == 0, "renderGantt: zero columns");

    double t0 = config.windowStart;
    double t1 = config.windowEnd;
    if (t1 <= t0) {
        t1 = 0.0;
        for (const auto& ev : events)
            t1 = std::max(t1, ev.end);
    }
    double span = t1 - t0;
    if (span <= 0.0)
        return "(empty time window)\n";

    // Busy time per request inside the window, for row selection.
    std::map<int, double> busy;
    for (const auto& ev : events) {
        double lo = std::max(ev.start, t0);
        double hi = std::min(ev.end, t1);
        if (hi > lo)
            busy[ev.requestId] += hi - lo;
    }
    std::vector<std::pair<int, double>> rows(busy.begin(), busy.end());
    std::stable_sort(rows.begin(), rows.end(),
                     [](const auto& a, const auto& b) {
                         return a.second > b.second;
                     });
    if (rows.size() > config.maxRows)
        rows.resize(config.maxRows);
    std::sort(rows.begin(), rows.end());

    std::map<int, const Request*> by_id;
    for (const auto& req : requests)
        by_id[req.id] = &req;

    double col_width = span / static_cast<double>(config.columns);
    char head[96];
    std::snprintf(head, sizeof(head),
                  "Gantt %.4fs .. %.4fs (col = %.4fs)\n", t0, t1,
                  col_width);
    std::string out = head;

    for (const auto& [id, busy_time] : rows) {
        (void)busy_time;
        std::string lane(config.columns, '.');
        for (const auto& ev : events) {
            if (ev.requestId != id)
                continue;
            double lo = std::max(ev.start, t0);
            double hi = std::min(ev.end, t1);
            if (hi <= lo)
                continue;
            auto c0 = static_cast<size_t>((lo - t0) / col_width);
            // An event ending exactly on a column boundary does not
            // own that column.
            double hi_cols = (hi - t0) / col_width;
            auto c1 = static_cast<size_t>(
                std::max(std::ceil(hi_cols) - 1.0, 0.0));
            c0 = std::min(c0, config.columns - 1);
            c1 = std::min(std::max(c1, c0), config.columns - 1);
            for (size_t c = c0; c <= c1; ++c)
                lane[c] = '#';
        }
        const Request* req = by_id.count(id) ? by_id.at(id) : nullptr;
        char label[64];
        std::snprintf(label, sizeof(label), "%4d %-10s |", id,
                      req ? req->modelName.c_str() : "?");
        out += label + lane + "|\n";
    }
    return out;
}

namespace {

/** Request-identifying lane character: id mod 36 -> '0'-'9a-z'. */
char
requestChar(int id)
{
    int slot = id % 36;
    if (slot < 0)
        slot += 36;
    return slot < 10 ? static_cast<char>('0' + slot)
                     : static_cast<char>('a' + slot - 10);
}

/** Column range [c0, c1] covered by [lo, hi) within the window. */
bool
columnSpan(double lo, double hi, double t0, double col_width,
           size_t columns, size_t& c0, size_t& c1)
{
    if (hi <= lo)
        return false;
    c0 = static_cast<size_t>((lo - t0) / col_width);
    // A slice ending exactly on a column boundary does not own that
    // column (same convention as the per-request renderer).
    double hi_cols = (hi - t0) / col_width;
    c1 = static_cast<size_t>(std::max(std::ceil(hi_cols) - 1.0, 0.0));
    c0 = std::min(c0, columns - 1);
    c1 = std::min(std::max(c1, c0), columns - 1);
    return true;
}

} // namespace

std::string
renderTelemetryGantt(const Telemetry& telemetry,
                     const std::vector<std::string>& node_names,
                     GanttConfig config)
{
    fatalIf(!telemetry.config().recordEvents,
            "renderTelemetryGantt: telemetry ran without event "
            "recording");
    panicIf(config.columns == 0, "renderTelemetryGantt: zero columns");

    // Chronological view: undoes the ring rotation when a retention
    // cap bounded the event log.
    const std::vector<TelemetryEvent> events =
        telemetry.orderedEvents();
    if (events.empty())
        return "(no telemetry events recorded)\n";

    double t0 = config.windowStart;
    double t1 = config.windowEnd;
    if (t1 <= t0) {
        t1 = telemetry.runEnd();
        for (const TelemetryEvent& ev : events)
            t1 = std::max(t1, ev.time);
    }
    double span = t1 - t0;
    if (span <= 0.0)
        return "(empty time window)\n";
    double col_width = span / static_cast<double>(config.columns);

    size_t num_nodes =
        std::min(telemetry.nodes().size(), config.maxRows);
    std::vector<std::string> lanes(
        num_nodes, std::string(config.columns, '.'));

    // Execution slices first, then down intervals on top: a failure
    // abandons the in-flight layer, so the lost tail shows as 'x'.
    for (const TelemetryEvent& ev : events) {
        if (ev.kind != TeleKind::LayerComplete || ev.node < 0 ||
            static_cast<size_t>(ev.node) >= num_nodes)
            continue;
        size_t c0 = 0;
        size_t c1 = 0;
        if (columnSpan(std::max(ev.start, t0), std::min(ev.time, t1),
                       t0, col_width, config.columns, c0, c1)) {
            for (size_t c = c0; c <= c1; ++c)
                lanes[static_cast<size_t>(ev.node)][c] =
                    requestChar(ev.request);
        }
    }

    std::vector<double> down_since(num_nodes, -1.0);
    auto markDown = [&](size_t node, double until) {
        if (down_since[node] < 0.0)
            return;
        size_t c0 = 0;
        size_t c1 = 0;
        if (columnSpan(std::max(down_since[node], t0),
                       std::min(until, t1), t0, col_width,
                       config.columns, c0, c1)) {
            for (size_t c = c0; c <= c1; ++c)
                lanes[node][c] = 'x';
        }
        down_since[node] = -1.0;
    };
    for (const TelemetryEvent& ev : events) {
        if (ev.node < 0 || static_cast<size_t>(ev.node) >= num_nodes)
            continue;
        auto node = static_cast<size_t>(ev.node);
        if (ev.kind == TeleKind::NodeFail && down_since[node] < 0.0)
            down_since[node] = ev.time;
        else if (ev.kind == TeleKind::NodeRecover)
            markDown(node, ev.time);
    }
    for (size_t node = 0; node < num_nodes; ++node)
        markDown(node, t1);

    char head[112];
    std::snprintf(head, sizeof(head),
                  "Cluster Gantt %.4fs .. %.4fs (col = %.4fs, "
                  "lane char = request id mod 36, x = down)\n",
                  t0, t1, col_width);
    std::string out = head;
    for (size_t node = 0; node < num_nodes; ++node) {
        std::string name =
            node < node_names.size() && !node_names[node].empty()
                ? node_names[node]
                : "node" + std::to_string(node);
        char label[64];
        std::snprintf(label, sizeof(label), "%-15s |", name.c_str());
        out += label + lanes[node] + "|\n";
    }
    if (telemetry.nodes().size() > num_nodes)
        out += "(" +
               std::to_string(telemetry.nodes().size() - num_nodes) +
               " more node lanes truncated by maxRows)\n";
    return out;
}

} // namespace dysta
