/**
 * @file
 * Shared command-line parsing for the bench binaries, examples and
 * the sdysta CLI.
 *
 * Every bench main used to scan argv by hand with the argInt /
 * argDouble / argStr helpers, which silently ignored unknown flags —
 * a typo like `--request 50` ran the full-size default workload
 * without a word. ArgParser replaces that: flags are declared once
 * with a default and a help line, `--help` prints a generated usage
 * page, and any flag that was not declared is a hard fatal() error
 * listing the valid flags.
 *
 * Usage:
 *     ArgParser args("tab05_end_to_end", "Table 5 reproduction");
 *     args.addInt("--requests", 1000, "requests per workload");
 *     args.addJobs();
 *     args.addTraceCache();
 *     args.parse(argc, argv);
 *     int requests = args.getInt("--requests");
 *
 * Values are accepted as "--flag value" or "--flag=value".
 */

#ifndef DYSTA_UTIL_ARGS_HH
#define DYSTA_UTIL_ARGS_HH

#include <string>
#include <vector>

namespace dysta {

/** Declarative argv parser with --help and unknown-flag errors. */
class ArgParser
{
  public:
    ArgParser(std::string prog, std::string summary);

    // --- declaration -------------------------------------------------
    void addInt(const std::string& flag, int fallback,
                const std::string& help);
    void addDouble(const std::string& flag, double fallback,
                   const std::string& help);
    void addString(const std::string& flag,
                   const std::string& fallback,
                   const std::string& help);
    /** 0/1/true/false-valued flag (takes a value, like the rest). */
    void addBool(const std::string& flag, bool fallback,
                 const std::string& help);
    /** Value-less switch; getBool() is true iff it was supplied. */
    void addSwitch(const std::string& flag, const std::string& help);

    /** The shared `--jobs N` flag (default: hardware concurrency). */
    void addJobs();
    /** The shared `--trace-cache DIR` flag (default: no cache). */
    void addTraceCache();

    /**
     * Declare a positional argument, in declaration order. Optional
     * positionals must come after all required ones.
     */
    void addPositional(const std::string& name,
                       const std::string& help, bool required = true);

    // --- parsing -----------------------------------------------------
    /**
     * Parse argv. `--help`/`-h` prints usage() and exit(0)s;
     * undeclared flags, missing values, malformed numbers and
     * missing required positionals are fatal() errors naming the
     * valid flags.
     */
    void parse(int argc, char** argv);

    // --- access (after parse) ----------------------------------------
    int getInt(const std::string& flag) const;
    double getDouble(const std::string& flag) const;
    const std::string& getString(const std::string& flag) const;
    bool getBool(const std::string& flag) const;

    /** Whether the user supplied the flag (vs the default). */
    bool given(const std::string& flag) const;

    /** Positional value by name ("" when an optional one is absent). */
    const std::string& positional(const std::string& name) const;

    /** The generated --help text. */
    std::string usage() const;

  private:
    enum class Kind : int { Int, Double, String, Bool, Switch };

    struct Flag
    {
        std::string name;
        Kind kind = Kind::String;
        std::string help;
        std::string value;   ///< current value, textual
        std::string fallback;
        bool supplied = false;
    };

    struct Positional
    {
        std::string name;
        std::string help;
        bool required = true;
        std::string value;
        bool supplied = false;
    };

    std::string prog;
    std::string summary;
    std::vector<Flag> flags;
    std::vector<Positional> positionals;

    void declare(const std::string& flag, Kind kind,
                 const std::string& fallback,
                 const std::string& help);
    const Flag& find(const std::string& flag, Kind kind) const;
    [[noreturn]] void unknownFlag(const std::string& flag) const;
};

} // namespace dysta

#endif // DYSTA_UTIL_ARGS_HH
