#include "core/latency_predictor.hh"

#include <algorithm>

#include "util/logging.hh"

namespace dysta {

std::string
toString(PredictorStrategy strategy)
{
    switch (strategy) {
      case PredictorStrategy::AverageAll: return "average-all";
      case PredictorStrategy::LastN: return "last-n";
      case PredictorStrategy::LastOne: return "last-one";
      case PredictorStrategy::Ema: return "ema";
    }
    panic("toString: unknown PredictorStrategy");
}

PredictorStrategy
predictorStrategyFromName(const std::string& name)
{
    if (name == "average-all")
        return PredictorStrategy::AverageAll;
    if (name == "last-n")
        return PredictorStrategy::LastN;
    if (name == "last-one")
        return PredictorStrategy::LastOne;
    if (name == "ema")
        return PredictorStrategy::Ema;
    fatal("predictorStrategyFromName: unknown strategy '" + name +
          "'; valid strategies: average-all, last-n, last-one, ema");
}

SparseLatencyPredictor::SparseLatencyPredictor(const ModelInfo& model,
                                               PredictorConfig config)
    : info(&model), cfg(config)
{
    fatalIf(cfg.lastN < 1, "SparseLatencyPredictor: lastN must be >= 1");
    fatalIf(cfg.emaWeight <= 0.0 || cfg.emaWeight > 1.0,
            "SparseLatencyPredictor: emaWeight must be in (0, 1]");
}

void
SparseLatencyPredictor::observe(size_t layer, double monitored_sparsity)
{
    panicIf(layer >= info->avgLayerSparsity.size(),
            "SparseLatencyPredictor::observe: layer out of range");
    panicIf(monitored_sparsity < 0.0,
            "SparseLatencyPredictor::observe: unmonitored layer");
    panicIf(info->avgLayerSparsity[layer] < 0.0,
            "SparseLatencyPredictor::observe: layer has no profiled "
            "sparsity baseline");
    observedLayers.push_back(layer);
    observedSparsity.push_back(monitored_sparsity);
}

double
SparseLatencyPredictor::clampGamma(double g) const
{
    return std::clamp(g, cfg.gammaMin, cfg.gammaMax);
}

double
SparseLatencyPredictor::gamma() const
{
    if (observedLayers.empty())
        return 1.0;

    auto density = [](double sparsity) {
        return std::clamp(1.0 - sparsity, 1e-3, 1.0);
    };

    switch (cfg.strategy) {
      case PredictorStrategy::AverageAll: {
        // Observed mean density vs the network-average density.
        double obs = 0.0;
        for (double s : observedSparsity)
            obs += density(s);
        obs /= static_cast<double>(observedSparsity.size());
        double base = density(info->avgNetworkSparsity);
        return clampGamma(obs / base);
      }
      case PredictorStrategy::LastN: {
        // Mean of the last N observations, but baselined on the
        // current layer's LUT entry only (Alg. 3 fetches S_avg(i,j)):
        // mixing layer types into the numerator is what degrades
        // this strategy in Table 4.
        size_t n = std::min<size_t>(cfg.lastN, observedSparsity.size());
        double obs = 0.0;
        for (size_t k = observedSparsity.size() - n;
             k < observedSparsity.size(); ++k) {
            obs += density(observedSparsity[k]);
        }
        obs /= static_cast<double>(n);
        double base =
            density(info->avgLayerSparsity[observedLayers.back()]);
        return clampGamma(obs / base);
      }
      case PredictorStrategy::LastOne: {
        double obs = density(observedSparsity.back());
        double base =
            density(info->avgLayerSparsity[observedLayers.back()]);
        return clampGamma(obs / base);
      }
      case PredictorStrategy::Ema: {
        // Each observation contributes its own density ratio against
        // its layer's LUT baseline, folded into an exponential
        // moving average seeded at the profile prior gamma = 1.
        double g = 1.0;
        for (size_t k = 0; k < observedSparsity.size(); ++k) {
            double base =
                density(info->avgLayerSparsity[observedLayers[k]]);
            double ratio = density(observedSparsity[k]) / base;
            g = (1.0 - cfg.emaWeight) * g + cfg.emaWeight * ratio;
        }
        return clampGamma(g);
      }
    }
    panic("SparseLatencyPredictor: unknown strategy");
}

double
SparseLatencyPredictor::predictRemaining(size_t next_layer) const
{
    return cfg.alpha * gamma() * info->estRemaining(next_layer);
}

double
SparseLatencyPredictor::predictTotal() const
{
    return cfg.alpha * gamma() * info->avgLatency;
}

void
SparseLatencyPredictor::reset()
{
    observedLayers.clear();
    observedSparsity.clear();
}

} // namespace dysta
