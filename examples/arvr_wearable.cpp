/**
 * @file
 * AR/VR wearable scenario (Table 3): hand tracking (SSD) and gesture
 * recognition (MobileNet) share one Eyeriss-V2-class accelerator.
 *
 * Unlike the bench harness, this example builds the workload by hand
 * with the low-level API: per-task SLO multipliers (hand tracking is
 * latency-critical, gestures are tolerant), explicit request
 * construction from trace pools, and a Gantt-style dump of the first
 * scheduling decisions so the preemption behaviour is visible.
 *
 * Usage: arvr_wearable [--requests N]
 */

#include <cstdio>
#include <vector>

#include "core/dysta.hh"
#include "exp/experiments.hh"
#include "exp/gantt.hh"
#include "sched/engine.hh"
#include "sched/fcfs.hh"
#include "util/args.hh"
#include "util/rng.hh"
#include "util/table.hh"

using namespace dysta;

namespace {

std::vector<Request>
buildWorkload(const TraceRegistry& registry, int n, uint64_t seed)
{
    // Hand tracking at 2 req/s with a tight 6x SLO; gesture
    // recognition at 4 req/s with a relaxed 25x SLO. Two independent
    // Poisson streams, merged by arrival time.
    Rng rng(seed);
    std::vector<Request> reqs;
    double t_hand = rng.exponential(2.0);
    double t_gest = rng.exponential(4.0);
    for (int id = 0; id < n; ++id) {
        if (t_hand <= t_gest) {
            const TraceSet& set =
                registry.get("ssd300", SparsityPattern::ChannelWise);
            reqs.push_back(makeRequest(
                id, "ssd300", SparsityPattern::ChannelWise,
                set.sample(rng.uniformInt(0, set.size() - 1)), t_hand,
                6.0, set.avgTotalLatency()));
            t_hand += rng.exponential(2.0);
        } else {
            const TraceSet& set =
                registry.get("mobilenet", SparsityPattern::BlockNM);
            reqs.push_back(makeRequest(
                id, "mobilenet", SparsityPattern::BlockNM,
                set.sample(rng.uniformInt(0, set.size() - 1)), t_gest,
                25.0, set.avgTotalLatency()));
            t_gest += rng.exponential(4.0);
        }
    }
    return reqs;
}

} // namespace

int
main(int argc, char** argv)
{
    ArgParser args("arvr_wearable",
                   "Hand tracking and gesture recognition sharing "
                   "one Eyeriss-V2-class accelerator, built with the "
                   "low-level request API.");
    args.addInt("--requests", 300, "requests in the workload");
    args.parse(argc, argv);
    int requests = args.getInt("--requests");

    std::printf("Profiling wearable models on Eyeriss-V2...\n");
    BenchSetup setup;
    setup.includeAttnn = false;
    auto ctx = makeBenchContext(setup);

    AsciiTable t("AR/VR wearable: hand tracking (6x SLO) + gestures "
                 "(25x SLO)");
    t.setHeader({"scheduler", "ANTT", "hand viol [%]",
                 "gesture viol [%]"});

    for (const char* policy : {"FCFS", "Dysta"}) {
        auto sched = makeSchedulerByName(policy, *ctx,
                                         WorkloadKind::MultiCNN);
        std::vector<Request> reqs =
            buildWorkload(ctx->registry, requests, 11);
        EngineConfig ecfg;
        ecfg.recordEvents = true;
        SchedulerEngine engine(ecfg);
        EngineResult result = engine.run(reqs, *sched);

        int hand_viol = 0;
        int hand_n = 0;
        int gest_viol = 0;
        int gest_n = 0;
        for (const auto& req : reqs) {
            if (req.modelName == "ssd300") {
                ++hand_n;
                hand_viol += req.violated();
            } else {
                ++gest_n;
                gest_viol += req.violated();
            }
        }
        t.addRow({policy, AsciiTable::num(result.metrics.antt, 2),
                  AsciiTable::num(100.0 * hand_viol / hand_n, 1),
                  AsciiTable::num(100.0 * gest_viol / gest_n, 1)});

        if (std::string(policy) == "Dysta") {
            // Show the first two seconds of the schedule: MobileNet
            // gestures slotting between SSD layer blocks.
            GanttConfig gcfg;
            gcfg.windowStart = 0.0;
            gcfg.windowEnd = 2.0;
            gcfg.maxRows = 10;
            std::printf("%s", renderGantt(result.events, reqs,
                                          gcfg).c_str());
        }
    }
    t.print();
    return 0;
}
