/**
 * @file
 * `sdysta` — the scenario driver.
 *
 * Runs any declarative scenario file end to end: parse, validate,
 * Phase-1 profile (or trace-cache replay), grid execution on the
 * thread-pooled SweepRunner, long-format result table, and a
 * unified JSON report. The built-in scenario names (shipped as
 * scenarios/<name>.scn) are accepted in place of a path.
 *
 * Usage:
 *   sdysta scenarios/tab05.scn --jobs 4 --trace-cache .cache
 *   sdysta fig12 --requests 100 --seeds 1
 *   sdysta --list-policies
 *   sdysta scenarios/tab05.scn --print-spec
 */

#include <cstdio>
#include <filesystem>

#include "api/registry.hh"
#include "api/report.hh"
#include "api/scenario.hh"
#include "util/args.hh"
#include "util/logging.hh"
#include "util/table.hh"

using namespace dysta;

namespace {

void
printPolicyGroup(const std::string& title,
                 const std::vector<PolicyInfo>& rows)
{
    AsciiTable table(title);
    table.setHeader({"name", "parameters", "description"});
    for (const PolicyInfo& row : rows)
        table.addRow({row.name,
                      row.params.empty() ? "-" : row.params,
                      row.description});
    table.print();
}

} // namespace

int
main(int argc, char** argv)
{
    ArgParser args("sdysta",
                   "Run a declarative Sparse-DySta scenario file: "
                   "workload mix, arrival process, fleet, policies "
                   "and sweep axes all come from the scenario; this "
                   "driver only executes it and reports.");
    args.addPositional("scenario",
                       "scenario file path, or a built-in name "
                       "(fig12, fig14, fig15, tab05, "
                       "cluster-scaling, hetero-cluster, "
                       "hetero-failover)",
                       /*required=*/false);
    args.addInt("--requests", 0,
                "override the scenario's request count (0 = keep)");
    args.addInt("--seeds", 0,
                "override the scenario's seed replicas (0 = keep)");
    args.addInt("--samples", 0,
                "override the Phase-1 samples per model (0 = keep)");
    args.addJobs();
    args.addTraceCache();
    args.addString("--out", "",
                   "report path (default: REPORT_<name>.json)");
    args.addSwitch("--list-policies",
                   "print the policy registry tables and exit");
    args.addSwitch("--print-spec",
                   "print the canonical scenario form and exit");
    args.parse(argc, argv);

    if (args.getBool("--list-policies")) {
        const PolicyRegistry& registry = PolicyRegistry::global();
        printPolicyGroup("Schedulers (per-node policies)",
                         registry.schedulerTable());
        printPolicyGroup("Dispatchers (cluster front-ends)",
                         registry.dispatcherTable());
        printPolicyGroup("Estimators", registry.estimatorTable());
        printPolicyGroup("Arrival processes",
                         registry.arrivalTable());
        return 0;
    }

    const std::string& source = args.positional("scenario");
    fatalIf(source.empty(),
            "sdysta: missing scenario file (--help for usage)");

    // Anything path-shaped must be a readable file: silently falling
    // through to builtin-name lookup would turn a typo'd path into a
    // misleading "unknown scenario" error.
    bool path_like = source.find('/') != std::string::npos ||
                     (source.size() > 4 &&
                      source.substr(source.size() - 4) == ".scn");
    ScenarioSpec spec;
    if (std::filesystem::is_regular_file(source)) {
        spec = parseScenarioFile(source);
    } else if (path_like) {
        fatal("sdysta: cannot open scenario file '" + source + "'");
    } else {
        // Convenience: accept built-in names directly.
        spec = builtinScenario(source);
    }

    if (args.getInt("--requests") > 0)
        spec.requests = args.getInt("--requests");
    if (args.getInt("--seeds") > 0)
        spec.seeds = args.getInt("--seeds");
    if (args.getInt("--samples") > 0)
        spec.samples = args.getInt("--samples");

    if (args.getBool("--print-spec")) {
        std::printf("%s", serializeScenario(spec).c_str());
        return 0;
    }

    validateScenario(spec);

    ScenarioRunOptions options;
    options.jobs = args.getInt("--jobs");
    options.traceCache = args.getString("--trace-cache");

    std::printf("Running scenario '%s' (%zu grid cells) on %d "
                "thread%s...\n",
                spec.name.c_str(), scenarioCells(spec).size(),
                options.jobs, options.jobs == 1 ? "" : "s");
    ScenarioResult result = runScenario(spec, options);
    printScenarioTable(result);

    Reporter report("sdysta");
    report.meta("scenario_source", source);
    report.meta("jobs", result.jobs);
    report.meta("trace_cache", options.traceCache);
    report.add(result);

    std::string out = args.getString("--out");
    if (out.empty())
        out = "REPORT_" + spec.name + ".json";
    report.writeJson(out);
    return 0;
}
