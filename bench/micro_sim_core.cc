/**
 * @file
 * Microbenchmark of the simulation core's decision hot path:
 * decisions/sec of each policy's engine-facing `pickNext` (heap peek
 * or dense cached scan) against the legacy linear-scan baseline (the
 * old engine's per-decision cost: build a candidate view, then
 * `selectNext` with per-candidate hash lookups, string-keyed LUT
 * fetches and predictor re-evaluations).
 *
 * Two modes per policy and queue depth:
 *  - steady: repeated decisions over an unchanged ready set — the
 *    block-boundary re-dispatch with no progress in between;
 *  - churn: each decision is followed by a layer completion of the
 *    picked request (onLayerComplete, wrapping at the trace end),
 *    exercising the lazy re-keying path.
 *
 * `--telemetry-check` instead gates the telemetry subsystem's
 * disabled-path cost: the same cluster run is timed with a null
 * telemetry sink and with an attached no-op sink (all channels off,
 * no probes), medians compared. The two runs must produce identical
 * metrics (the bit-identity guarantee) and the attached-sink median
 * must stay within `--check-bound` of the null-sink median; exit 1
 * otherwise (the CI guard against emission-point regressions).
 *
 * Usage: micro_sim_core [--queue N] [--iters N]
 *        micro_sim_core --telemetry-check [--check-reps K]
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "exp/experiments.hh"
#include "obs/telemetry.hh"
#include "util/args.hh"
#include "util/logging.hh"
#include "util/table.hh"

using namespace dysta;

namespace {

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

/** A policy with a queue of `depth` all-arrived requests. */
struct Harness
{
    std::unique_ptr<Scheduler> policy;
    std::vector<Request*> ready;
    std::vector<const Request*> view;

    Harness(const std::string& name, const BenchContext& ctx,
            std::vector<Request>& requests, size_t depth)
    {
        policy = makeSchedulerByName(name, ctx,
                                     WorkloadKind::MultiAttNN);
        policy->reset();
        for (size_t i = 0; i < depth; ++i) {
            Request& req = requests[i];
            req.nextLayer = 0;
            req.executedTime = 0.0;
            req.lastRunEnd = req.arrival;
            req.finishTime = -1.0;
            ready.push_back(&req);
            policy->onArrival(req, req.arrival);
        }
    }

    /**
     * Advance the picked request by one layer through the full
     * callback protocol; a finished request is retired and
     * re-admitted fresh, so the policy's queues stay exactly in
     * sync with request state and the queue depth stays constant.
     */
    void
    advance(Request* req, double now)
    {
        const LayerTrace& layer = req->trace->layers[req->nextLayer];
        ++req->nextLayer;
        req->executedTime += layer.latency;
        policy->onLayerComplete(*req, now, layer.monitoredSparsity);
        if (req->done()) {
            policy->onComplete(*req, now);
            req->nextLayer = 0;
            req->executedTime = 0.0;
            policy->onArrival(*req, now);
            // Mirror engine semantics: the re-admitted request joins
            // the back of the ready set, keeping view order equal to
            // admission order for both selection paths.
            ready.erase(std::find(ready.begin(), ready.end(), req));
            ready.push_back(req);
        }
    }
};

struct Rate
{
    double decisionsPerSec = 0.0;
};

/** Legacy baseline: view rebuild + linear-scan selectNext. */
Rate
runBaseline(Harness& h, double now, long iters, bool churn)
{
    auto t0 = std::chrono::steady_clock::now();
    for (long i = 0; i < iters; ++i) {
        h.view.assign(h.ready.begin(), h.ready.end());
        size_t pick = h.policy->selectNext(h.view, now);
        if (churn)
            h.advance(h.ready[pick], now);
    }
    double dt = secondsSince(t0);
    return {static_cast<double>(iters) / dt};
}

/** Engine path: pickNext (heap peek / dense cached scan). */
Rate
runFast(Harness& h, double now, long iters, bool churn)
{
    auto t0 = std::chrono::steady_clock::now();
    for (long i = 0; i < iters; ++i) {
        Request* pick = h.policy->pickNext(h.ready, now);
        if (churn)
            h.advance(pick, now);
    }
    double dt = secondsSince(t0);
    return {static_cast<double>(iters) / dt};
}

std::string
rateStr(double per_sec)
{
    if (per_sec >= 1e6)
        return AsciiTable::num(per_sec / 1e6, 2) + " M/s";
    return AsciiTable::num(per_sec / 1e3, 1) + " k/s";
}

/**
 * Gate the telemetry emission points: an attached no-op sink must
 * neither change the simulated results nor cost more than `bound`
 * times the null-sink run. @return process exit code.
 */
int
telemetryCheck(const BenchContext& ctx, int reps, double bound)
{
    WorkloadConfig wl;
    wl.kind = WorkloadKind::MultiAttNN;
    wl.arrivalRate = 100.0;
    wl.numRequests = 400;

    ClusterRunConfig cluster; // 4 reference nodes, Dysta per node

    auto timeOne = [&](Telemetry* sink, Metrics& metrics) {
        ClusterRunConfig cfg = cluster;
        cfg.telemetry = sink;
        auto t0 = std::chrono::steady_clock::now();
        ClusterResult result = runCluster(ctx, wl, cfg);
        metrics = result.metrics;
        return secondsSince(t0);
    };
    auto median = [](std::vector<double> times) {
        std::sort(times.begin(), times.end());
        return times[times.size() / 2];
    };

    // Interleave the two configurations so clock/cache drift over
    // the measurement cannot bias one side.
    Telemetry noop(TelemetryConfig{/*recordEvents=*/false,
                                   /*recordSeries=*/false});
    Metrics off;
    Metrics on;
    std::vector<double> base_times;
    std::vector<double> noop_times;
    for (int rep = 0; rep < reps; ++rep) {
        base_times.push_back(timeOne(nullptr, off));
        noop_times.push_back(timeOne(&noop, on));
    }
    double base_sec = median(base_times);
    double noop_sec = median(noop_times);

    // Bit-identity first: a no-op sink must not perturb the run.
    fatalIf(off.antt != on.antt || off.makespan != on.makespan ||
                off.completed != on.completed || off.shed != on.shed,
            "telemetry-check: attached no-op telemetry changed the "
            "simulated results");

    double ratio = noop_sec / base_sec;
    std::printf("telemetry-check: median of %d cluster runs "
                "(%d requests, 4 nodes)\n"
                "  null sink:  %.4fs\n"
                "  no-op sink: %.4fs  (%.3fx, bound %.2fx)\n",
                reps, wl.numRequests, base_sec, noop_sec, ratio,
                bound);
    if (ratio > bound) {
        std::printf("telemetry-check: FAIL — disabled-telemetry "
                    "overhead above bound\n");
        return 1;
    }
    std::printf("telemetry-check: OK\n");
    return 0;
}

} // namespace

int
main(int argc, char** argv)
{
    ArgParser args("micro_sim_core",
                   "Ready-queue microbenchmark: heap-backed pickNext "
                   "vs the legacy linear scan.");
    args.addInt("--queue", 64, "ready-set depth");
    args.addInt("--iters", 200000, "decisions per measurement");
    args.addSwitch("--telemetry-check",
                   "gate disabled-telemetry overhead on a cluster "
                   "run instead of benchmarking pickNext (exit 1 "
                   "when outside --check-bound)");
    args.addInt("--check-reps", 9,
                "cluster-run repetitions per median "
                "(--telemetry-check)");
    args.addDouble("--check-bound", 1.25,
                   "max allowed no-op/null median wall-time ratio "
                   "(--telemetry-check)");
    args.parse(argc, argv);
    size_t depth = static_cast<size_t>(args.getInt("--queue"));
    long iters = args.getInt("--iters");

    std::printf("Profiling AttNN models on Sanger...\n");
    BenchSetup setup;
    setup.includeCnn = false;
    setup.samplesPerModel = 60;
    auto ctx = makeBenchContext(setup);

    if (args.getBool("--telemetry-check"))
        return telemetryCheck(*ctx, args.getInt("--check-reps"),
                              args.getDouble("--check-bound"));

    WorkloadConfig wl;
    wl.kind = WorkloadKind::MultiAttNN;
    wl.arrivalRate = 30.0;
    wl.numRequests = static_cast<int>(depth);
    std::vector<Request> requests = generateWorkload(wl, ctx->registry);
    double now = requests.back().arrival + 1.0;

    for (bool churn : {false, true}) {
        AsciiTable t(std::string("Decision rate, ") +
                     std::to_string(depth) + "-request ready set, " +
                     (churn ? "churn" : "steady") +
                     " (pickNext vs legacy linear scan)");
        t.setHeader({"policy", "linear scan", "pickNext", "speedup"});
        for (const char* name : {"FCFS", "SJF", "PREMA", "Dysta"}) {
            // Churn mutates predictor state: fresh harnesses per
            // mode keep the two paths comparable.
            Harness base(name, *ctx, requests, depth);
            Rate slow = runBaseline(base, now, iters, churn);
            Harness fast(name, *ctx, requests, depth);
            Rate quick = runFast(fast, now, iters, churn);
            t.addRow({name, rateStr(slow.decisionsPerSec),
                      rateStr(quick.decisionsPerSec),
                      AsciiTable::num(quick.decisionsPerSec /
                                          slow.decisionsPerSec,
                                      1) +
                          "x"});
        }
        t.print();
    }
    std::printf(
        "Read: heap-backed FCFS/SJF answer block-boundary decisions "
        "in O(1)/O(log n); PREMA and dynamic Dysta keep densely "
        "cached score inputs, trading the per-candidate hash + LUT + "
        "predictor work of the legacy scan for plain arithmetic.\n");
    return 0;
}
