/**
 * @file
 * Cluster scaling sweep: fleet size x front-end dispatcher x arrival
 * process, on the multi-AttNN scenario at a saturating offered load.
 *
 * Each cell serves one seeded workload on a homogeneous cluster whose
 * nodes run the Dysta per-node policy; reported are system throughput,
 * ANTT, SLO violation rate, tail latency percentiles (p50/p95/p99
 * end-to-end latency and p99 normalized turnaround) and (when
 * admission control is on) the shed count. Expected reads:
 *  - throughput scales monotonically with the node count while the
 *    offered load saturates the fleet;
 *  - backlog-aware placement beats round-robin under bursty (MMPP)
 *    and diurnal traffic, where instantaneous load imbalance is the
 *    failure mode.
 *
 * The (arrival x dispatcher x fleet size) grid runs as independent
 * cells on the parallel SweepRunner; output is identical for any
 * --jobs.
 *
 * Usage: bench_cluster_scaling [--requests N] [--rate R] [--seed S]
 *                              [--sched NAME] [--admission 0|1]
 *                              [--jobs N] [--trace-cache DIR]
 */

#include <cstdio>
#include <string>
#include <vector>

#include "exp/sweep.hh"
#include "util/table.hh"

using namespace dysta;

int
main(int argc, char** argv)
{
    int requests = argInt(argc, argv, "--requests", 400);
    double rate = argDouble(argc, argv, "--rate", 120.0);
    int seed = argInt(argc, argv, "--seed", 42);
    std::string sched = argStr(argc, argv, "--sched", "Dysta");
    bool admission = argInt(argc, argv, "--admission", 0) != 0;

    std::printf("Profiling AttNN models on Sanger...\n");
    BenchSetup setup;
    setup.includeCnn = false;
    auto ctx = makeBenchContext(setup, argTraceCache(argc, argv));
    SweepRunner runner(*ctx, argJobs(argc, argv));

    const size_t fleet_sizes[] = {1, 2, 4, 8};

    struct ArrivalCase
    {
        const char* label;
        ArrivalConfig config;
    };
    std::vector<ArrivalCase> arrivals;
    arrivals.push_back({"poisson", {}});
    {
        ArrivalConfig mmpp;
        mmpp.kind = ArrivalKind::Mmpp;
        arrivals.push_back({"mmpp", mmpp});
    }
    {
        ArrivalConfig diurnal;
        diurnal.kind = ArrivalKind::Diurnal;
        arrivals.push_back({"diurnal", diurnal});
    }

    // One cell per (arrival, dispatcher, fleet size).
    std::vector<SweepCell> cells;
    for (const ArrivalCase& arrival : arrivals) {
        for (const std::string& disp : allDispatchers()) {
            for (size_t n : fleet_sizes) {
                SweepCell cell;
                cell.workload.kind = WorkloadKind::MultiAttNN;
                cell.workload.arrivalRate = rate;
                cell.workload.arrival = arrival.config;
                cell.workload.numRequests = requests;
                cell.workload.seed = static_cast<uint64_t>(seed);
                cell.clusterMode = true;
                cell.cluster.numNodes = n;
                cell.cluster.dispatcher = disp;
                cell.cluster.nodeScheduler = sched;
                cell.cluster.admission.enabled = admission;
                cells.push_back(cell);
            }
        }
    }
    std::vector<SweepCellResult> results = runner.run(cells);

    size_t num_fleets = std::size(fleet_sizes);
    size_t cells_per_arrival = allDispatchers().size() * num_fleets;
    for (size_t a = 0; a < arrivals.size(); ++a) {
        const ArrivalCase& arrival = arrivals[a];
        for (const char* metric :
             {"throughput", "ANTT", "violation", "slo miss",
              "p50 lat [ms]", "p95 lat [ms]", "p99 lat [ms]",
              "p99 ANT", "shed"}) {
            if (std::string(metric) == "shed" && !admission)
                continue;

            // `rate` is the process's base rate; MMPP's long-run
            // offered load is higher (~1.67x with default bursts).
            AsciiTable t(std::string("Cluster scaling (") + metric +
                         "), " + arrival.label + " arrivals @ base " +
                         AsciiTable::num(rate, 0) + " req/s, " +
                         sched + " per node");
            std::vector<std::string> header = {"dispatcher"};
            for (size_t n : fleet_sizes)
                header.push_back(std::to_string(n) + " node" +
                                 (n > 1 ? "s" : ""));
            t.setHeader(header);

            std::vector<std::string> dispatchers = allDispatchers();
            for (size_t d = 0; d < dispatchers.size(); ++d) {
                std::vector<std::string> row = {dispatchers[d]};
                for (size_t f = 0; f < num_fleets; ++f) {
                    const Metrics& m =
                        results[a * cells_per_arrival +
                                d * num_fleets + f]
                            .metrics;
                    std::string cell;
                    if (std::string(metric) == "throughput")
                        cell = AsciiTable::num(m.throughput, 1);
                    else if (std::string(metric) == "ANTT")
                        cell = AsciiTable::num(m.antt, 1);
                    else if (std::string(metric) == "violation")
                        cell = AsciiTable::num(
                                   m.violationRate * 100.0, 1) + "%";
                    else if (std::string(metric) == "slo miss")
                        // Counts shed requests as misses; equals the
                        // violation rate whenever nothing was shed.
                        cell = AsciiTable::num(
                                   m.sloMissRate * 100.0, 1) + "%";
                    else if (std::string(metric) == "p50 lat [ms]")
                        cell = AsciiTable::num(m.p50Latency * 1e3, 2);
                    else if (std::string(metric) == "p95 lat [ms]")
                        cell = AsciiTable::num(m.p95Latency * 1e3, 2);
                    else if (std::string(metric) == "p99 lat [ms]")
                        cell = AsciiTable::num(m.p99Latency * 1e3, 2);
                    else if (std::string(metric) == "p99 ANT")
                        cell = AsciiTable::num(m.p99Turnaround, 1);
                    else
                        cell = std::to_string(m.shed);
                    row.push_back(cell);
                }
                t.addRow(row);
            }
            t.print();
        }
    }
    std::printf("Read: under saturating load, throughput tracks the "
                "fleet size for every dispatcher; under bursty and "
                "diurnal arrivals the backlog-aware front-end keeps "
                "ANTT and SLO violations below oblivious rotation.\n");
    return 0;
}
