/**
 * @file
 * Phase-1 hardware-simulation driver.
 *
 * Iterates a sparsified model over a synthetic dataset on the target
 * accelerator model and collects per-sample traces, exactly mirroring
 * the paper's PyTorch-hook profiling flow (Fig. 7, left half).
 */

#ifndef DYSTA_TRACE_PROFILER_HH
#define DYSTA_TRACE_PROFILER_HH

#include <cstdint>

#include "accel/eyeriss_v2.hh"
#include "accel/sanger.hh"
#include "sparsity/dataset.hh"
#include "trace/trace.hh"

namespace dysta {

/** Profiling-run parameters. */
struct ProfileConfig
{
    /** Inputs to run per (model, pattern) pair. */
    int numSamples = 400;
    /** Master seed; every sample derives its own stream. */
    uint64_t seed = 1;
    /** Target overall weight sparsity for CNN pruning. */
    double cnnSparsityRate = 0.6;
};

/** Profile one CNN under one pruning pattern on Eyeriss-V2. */
TraceSet profileCnn(const ModelDesc& model, SparsityPattern pattern,
                    const DatasetProfile& dataset,
                    const EyerissV2Model& accel,
                    const ProfileConfig& config);

/** Profile one AttNN under dynamic attention pruning on Sanger. */
TraceSet profileAttn(const ModelDesc& model,
                     const DatasetProfile& dataset,
                     const SangerModel& accel,
                     const ProfileConfig& config);

/** Profile any zoo model with its default dataset profile. */
TraceSet profileModel(const ModelDesc& model, SparsityPattern pattern,
                      const EyerissV2Model& cnn_accel,
                      const SangerModel& attn_accel,
                      const ProfileConfig& config);

} // namespace dysta

#endif // DYSTA_TRACE_PROFILER_HH
