/**
 * @file
 * Weight sparsity patterns studied by the paper (Sec. 2.3.2, Fig. 6):
 * point-wise random, N:M block-wise and channel-wise pruning, plus the
 * dense baseline. AttNNs use dynamic attention pruning instead and are
 * tagged Dense at the weight level.
 */

#ifndef DYSTA_SPARSITY_PATTERN_HH
#define DYSTA_SPARSITY_PATTERN_HH

#include <string>
#include <vector>

namespace dysta {

/** Static weight sparsity mask pattern. */
enum class SparsityPattern
{
    Dense,          ///< no weight pruning
    RandomPointwise,///< unstructured magnitude pruning
    BlockNM,        ///< N out of every M weights kept (e.g. 2:8)
    ChannelWise,    ///< whole output channels removed
};

std::string toString(SparsityPattern pattern);

/** Parse a canonical name; fatal() on unknown input. */
SparsityPattern patternFromString(const std::string& name);

/** The three CNN pruning patterns used by the benchmark. */
std::vector<SparsityPattern> cnnPatterns();

} // namespace dysta

#endif // DYSTA_SPARSITY_PATTERN_HH
