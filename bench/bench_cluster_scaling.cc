/**
 * @file
 * Cluster scaling sweep: fleet size x front-end dispatcher x arrival
 * process, on the multi-AttNN scenario at a saturating offered load
 * with Dysta per node. Expected reads:
 *  - throughput scales monotonically with the node count while the
 *    offered load saturates the fleet;
 *  - backlog-aware placement beats round-robin under bursty (MMPP)
 *    and diurnal traffic, where instantaneous load imbalance is the
 *    failure mode.
 *
 * This main is the built-in "cluster-scaling" scenario plus flag
 * overrides; `sdysta scenarios/cluster-scaling.scn` runs the
 * identical grid. `--admission 1` adds SLO-aware load shedding.
 */

#include <cstdio>

#include "api/report.hh"
#include "api/scenario.hh"
#include "util/args.hh"

using namespace dysta;

int
main(int argc, char** argv)
{
    ArgParser args("bench_cluster_scaling",
                   "Fleet size x dispatcher x arrival process at "
                   "saturating load (the built-in 'cluster-scaling' "
                   "scenario).");
    args.addInt("--requests", 400, "requests per workload");
    args.addDouble("--rate", 120.0, "base arrival rate [req/s]");
    args.addInt("--seed", 42, "workload seed");
    args.addString("--sched", "Dysta", "per-node scheduler spec");
    args.addBool("--admission", false,
                 "SLO-aware admission control (sheds hopeless "
                 "requests)");
    args.addJobs();
    args.addTraceCache();
    args.addString("--out", "BENCH_cluster_scaling.json",
                   "report path");
    args.parse(argc, argv);

    ScenarioSpec spec = builtinScenario("cluster-scaling");
    spec.requests = args.getInt("--requests");
    spec.seed = static_cast<uint64_t>(args.getInt("--seed"));
    spec.workloads = {
        {WorkloadKind::MultiAttNN, args.getDouble("--rate")}};
    spec.schedulers = {args.getString("--sched")};
    spec.admission = args.getBool("--admission");

    ScenarioRunOptions options;
    options.jobs = args.getInt("--jobs");
    options.traceCache = args.getString("--trace-cache");
    ScenarioResult result = runScenario(spec, options);
    printScenarioTable(result);
    std::printf("Read: under saturating load, throughput tracks the "
                "fleet size for every dispatcher; under bursty and "
                "diurnal arrivals the backlog-aware front-end keeps "
                "ANTT and SLO violations below oblivious rotation.\n");

    Reporter report("bench_cluster_scaling");
    report.meta("jobs", result.jobs);
    report.add(result);
    report.writeJson(args.getString("--out"));
    return 0;
}
