#include "api/diff.hh"

#include <cstdio>

#include "util/logging.hh"

namespace dysta {

namespace {

/** Short value rendering for difference lines. */
std::string
describe(const JsonValue& v)
{
    switch (v.kind) {
    case JsonValue::Kind::Null:
        return "null";
    case JsonValue::Kind::Bool:
        return v.boolean ? "true" : "false";
    case JsonValue::Kind::Number:
        return jsonNumber(v.number);
    case JsonValue::Kind::String:
        return "\"" + v.str + "\"";
    case JsonValue::Kind::Array:
        return "array[" + std::to_string(v.items.size()) + "]";
    case JsonValue::Kind::Object:
        return "object{" + std::to_string(v.members.size()) + "}";
    }
    return "?";
}

void
diffValues(const JsonValue& a, const JsonValue& b,
           const std::string& path, ReportDiff& out)
{
    if (a.kind != b.kind) {
        out.differences.push_back(path + ": " + toString(a.kind) +
                                  " vs " + toString(b.kind));
        return;
    }
    switch (a.kind) {
    case JsonValue::Kind::Null:
        return;
    case JsonValue::Kind::Bool:
    case JsonValue::Kind::Number:
    case JsonValue::Kind::String:
        if (a.boolean != b.boolean || a.number != b.number ||
            a.str != b.str)
            out.differences.push_back(path + ": " + describe(a) +
                                      " vs " + describe(b));
        return;
    case JsonValue::Kind::Array: {
        if (a.items.size() != b.items.size()) {
            out.differences.push_back(
                path + ": " + std::to_string(a.items.size()) +
                " vs " + std::to_string(b.items.size()) +
                " elements");
            return;
        }
        for (size_t i = 0; i < a.items.size(); ++i)
            diffValues(a.items[i], b.items[i],
                       path + "[" + std::to_string(i) + "]", out);
        return;
    }
    case JsonValue::Kind::Object: {
        if (a.members.size() != b.members.size()) {
            out.differences.push_back(
                path + ": " + std::to_string(a.members.size()) +
                " vs " + std::to_string(b.members.size()) +
                " members");
            return;
        }
        for (size_t i = 0; i < a.members.size(); ++i) {
            const auto& [ka, va] = a.members[i];
            const auto& [kb, vb] = b.members[i];
            std::string child =
                path.empty() ? ka : path + "." + ka;
            if (ka != kb) {
                out.differences.push_back(child + ": member \"" +
                                          ka + "\" vs \"" + kb +
                                          "\"");
                continue;
            }
            diffValues(va, vb, child, out);
        }
        return;
    }
    }
}

/**
 * Copy of `doc` with the provenance members dropped: the top-level
 * "meta" object and each scenario's serialized "spec". The diff
 * compares *results*; two runs that produced identical rows compare
 * equal even when their specs differ in execution-model knobs
 * (streaming on/off, calendar choice, CLI overrides).
 */
JsonValue
stripMeta(const JsonValue& doc)
{
    if (!doc.isObject())
        return doc;
    JsonValue out = doc;
    out.members.clear();
    for (const auto& [key, value] : doc.members) {
        if (key == "meta")
            continue;
        if (key == "scenarios" && value.kind ==
                                      JsonValue::Kind::Array) {
            JsonValue scenarios = value;
            for (JsonValue& scenario : scenarios.items) {
                if (!scenario.isObject())
                    continue;
                JsonValue stripped = scenario;
                stripped.members.clear();
                for (const auto& [k, v] : scenario.members)
                    if (k != "spec")
                        stripped.members.emplace_back(k, v);
                scenario = std::move(stripped);
            }
            out.members.emplace_back(key, std::move(scenarios));
            continue;
        }
        out.members.emplace_back(key, value);
    }
    return out;
}

} // namespace

ReportDiff
diffReports(const JsonValue& a, const JsonValue& b)
{
    ReportDiff out;
    diffValues(stripMeta(a), stripMeta(b), "", out);
    return out;
}

int
runReportDiff(const std::string& path_a, const std::string& path_b)
{
    JsonValue a = parseJsonFile(path_a);
    JsonValue b = parseJsonFile(path_b);
    ReportDiff diff = diffReports(a, b);
    if (diff.identical()) {
        // detlint-allow(stdout-print): the --diff verdict is the
        // sdysta CLI's primary output for this subcommand
        std::printf("reports identical modulo metadata (%s, %s)\n",
                    path_a.c_str(), path_b.c_str());
        return 0;
    }
    // detlint-allow(stdout-print): --diff verdict, see above
    std::printf("%zu difference%s between %s and %s:\n",
                diff.differences.size(),
                diff.differences.size() == 1 ? "" : "s",
                path_a.c_str(), path_b.c_str());
    for (const std::string& line : diff.differences)
        std::printf("  %s\n", line.c_str()); // detlint-allow(stdout-print): --diff verdict, see above
    return 1;
}

} // namespace dysta
