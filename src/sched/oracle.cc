#include "sched/oracle.hh"

#include <algorithm>

namespace dysta {

size_t
OracleScheduler::selectNext(const std::vector<const Request*>& ready,
                            double now)
{
    size_t best = 0;
    double best_score = 0.0;
    double queue_size = static_cast<double>(ready.size());

    for (size_t i = 0; i < ready.size(); ++i) {
        const Request& req = *ready[i];
        double remaining = est->remaining(req);
        double isol = est->isolated(req);
        // Same slack clamp as Dysta: blown deadlines stop sinking
        // and comfortable ones saturate at one isolated latency.
        double slack = std::clamp(req.deadline - now - remaining, 0.0,
                                  isol);
        double wait = std::max(0.0, now - req.lastRunEnd);
        double penalty = std::min(wait / isol, 2.0) / queue_size;
        double score = remaining + eta * (slack + penalty);
        if (i == 0 || score < best_score) {
            best = i;
            best_score = score;
        }
    }
    return best;
}

} // namespace dysta
