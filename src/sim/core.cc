#include "sim/core.hh"

#include <algorithm>

#include "sim/event_queue.hh"
#include "util/logging.hh"

namespace dysta {

SimResult
runSimulation(const SimConfig& cfg, std::vector<Request>& requests,
              Dispatcher& dispatcher, const PolicyFactory& make_policy)
{
    fatalIf(cfg.nodes.empty(), "runSimulation: need at least one node");
    fatalIf(cfg.admission.enabled && cfg.lut == nullptr &&
                cfg.admissionEstimator == nullptr,
            "runSimulation: admission control requires a ModelInfoLut");
    fatalIf(cfg.admission.enabled && cfg.admission.margin <= 0.0,
            "runSimulation: admission margin must be positive");

    SimResult result;
    dispatcher.reset();

    std::vector<std::unique_ptr<SimNode>> nodes;
    nodes.reserve(cfg.nodes.size());
    for (size_t i = 0; i < cfg.nodes.size(); ++i) {
        auto policy = make_policy(cfg.nodes[i], static_cast<int>(i));
        panicIf(policy == nullptr,
                "runSimulation: policy factory returned null");
        nodes.push_back(std::make_unique<SimNode>(
            static_cast<int>(i), cfg.nodes[i], std::move(policy)));
    }

    // All admission estimates flow through the estimator layer; the
    // default is the static LUT view of queued work.
    std::unique_ptr<LutEstimator> owned_estimator;
    const LatencyEstimator* admission_est = cfg.admissionEstimator;
    if (cfg.admission.enabled && admission_est == nullptr) {
        owned_estimator = std::make_unique<LutEstimator>(*cfg.lut);
        admission_est = owned_estimator.get();
    }

    for (auto& req : requests) {
        panicIf(req.trace == nullptr || req.trace->layers.empty(),
                "runSimulation: request without a trace");
        req.nextLayer = 0;
        req.executedTime = 0.0;
        req.lastRunEnd = req.arrival;
        req.finishTime = -1.0;
        req.shed = false;
    }

    // Arrival order (stable on ties by id), encoded as calendar
    // events whose push order is the final tie-break.
    std::vector<Request*> pending;
    pending.reserve(requests.size());
    for (auto& req : requests)
        pending.push_back(&req);
    std::stable_sort(pending.begin(), pending.end(),
                     [](const Request* a, const Request* b) {
                         if (a->arrival != b->arrival)
                             return a->arrival < b->arrival;
                         return a->id < b->id;
                     });

    EventQueue calendar;
    for (Request* req : pending) {
        SimEvent ev;
        ev.time = req->arrival;
        ev.kind = SimEventKind::Arrival;
        ev.req = req;
        calendar.push(ev);
    }

    // Estimated queued work on a node in node-seconds: a fast node
    // absorbs the same queue sooner.
    auto delayOn = [&](const SimNode& node, const Request& req) {
        double work = 0.0;
        for (const Request* r : node.queue())
            work += admission_est->remaining(*r);
        return (work + admission_est->isolated(req)) /
               node.profile().speedFactor;
    };

    auto pushLayerEnd = [&](const SimNode& node, double end) {
        SimEvent ev;
        ev.time = end;
        ev.kind = SimEventKind::LayerComplete;
        ev.node = node.id();
        calendar.push(ev);
    };

    size_t finished = 0;
    size_t shed_count = 0;
    bool decision_pending = false;

    while (finished + shed_count < requests.size()) {
        panicIf(calendar.empty(),
                "runSimulation: empty calendar with unfinished "
                "requests");
        SimEvent ev = calendar.pop();
        double now = ev.time;

        switch (ev.kind) {
          case SimEventKind::Arrival: {
            Request* req = ev.req;
            size_t pick = dispatcher.selectNode(*req, nodes, now);
            panicIf(pick >= nodes.size(),
                    "runSimulation: dispatcher returned invalid node");

            if (cfg.admission.enabled) {
                if (now + cfg.admission.margin *
                              delayOn(*nodes[pick], *req) >
                    req->deadline) {
                    // The chosen node cannot make the deadline: fall
                    // back to the least-loaded node before shedding,
                    // so an admission-blind placement (e.g. round-
                    // robin) doesn't drop requests the rest of the
                    // fleet could still serve.
                    size_t best = 0;
                    double best_delay = 0.0;
                    for (size_t i = 0; i < nodes.size(); ++i) {
                        double delay = delayOn(*nodes[i], *req);
                        if (i == 0 || delay < best_delay) {
                            best = i;
                            best_delay = delay;
                        }
                    }
                    if (now + cfg.admission.margin * best_delay >
                        req->deadline) {
                        req->shed = true;
                        ++shed_count;
                        dispatcher.onShed(*req, now);
                        break;
                    }
                    pick = best;
                }
            }

            nodes[pick]->enqueue(req, now);
            // Dispatch after every arrival of this instant has been
            // placed (admit-then-select): the Decision kind sorts
            // after all same-time arrivals and completions.
            if (!decision_pending) {
                SimEvent decide;
                decide.time = now;
                decide.kind = SimEventKind::Decision;
                calendar.push(decide);
                decision_pending = true;
            }
            break;
          }

          case SimEventKind::Decision: {
            decision_pending = false;
            for (auto& node : nodes) {
                if (!node->busy() && node->outstanding() > 0)
                    pushLayerEnd(*node, node->beginBlock(now));
            }
            break;
          }

          case SimEventKind::LayerComplete: {
            SimNode& node = *nodes[ev.node];
            const Request* req = node.current();
            size_t layer_idx = req->nextLayer;

            if (cfg.recordEvents) {
                double lat = node.layerLatency(
                    req->trace->layers[layer_idx]);
                result.events.push_back({node.id(), req->id,
                                         layer_idx, now - lat, now});
            }

            Request* done = node.completeLayer();
            dispatcher.onLayerComplete(node, *req, now,
                                       node.lastMonitoredSparsity());
            if (done != nullptr) {
                dispatcher.onComplete(node, *done, now);
                ++finished;
            }

            // Continue the non-preemptible block, or make a fresh
            // dispatch decision at the block boundary.
            if (node.blockContinues())
                pushLayerEnd(node, node.continueBlock(now));
            else if (node.outstanding() > 0)
                pushLayerEnd(node, node.beginBlock(now));
            break;
          }
        }
    }

    result.metrics = computeMetricsCompleted(requests);
    result.perNodeCompleted.reserve(nodes.size());
    for (const auto& n : nodes) {
        result.perNodeCompleted.push_back(n->completedCount());
        result.preemptions += n->preemptionCount();
        result.decisions += n->decisionCount();
    }
    return result;
}

} // namespace dysta
