#include "exp/experiments.hh"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "api/registry.hh"
#include "chaos/failure.hh"
#include "exp/sweep.hh"
#include "workload/source.hh"
#include "models/zoo.hh"
#include "trace/profiler.hh"
#include "util/logging.hh"

namespace dysta {

namespace {

/**
 * Benchmark model names for a setup, deduplicated in scenario order
 * (MultiCNN lists ssd300 twice).
 */
std::vector<std::string>
benchModelNames(const BenchSetup& setup)
{
    std::vector<std::string> names;
    auto append = [&names](WorkloadKind kind) {
        for (const std::string& name : workloadModels(kind)) {
            bool known = false;
            for (const auto& n : names)
                known = known || n == name;
            if (!known)
                names.push_back(name);
        }
    };
    if (setup.includeCnn)
        append(WorkloadKind::MultiCNN);
    if (setup.includeAttnn)
        append(WorkloadKind::MultiAttNN);
    return names;
}

std::string
readTextFile(const std::string& path)
{
    std::ifstream in(path);
    if (!in)
        return {};
    std::ostringstream out;
    out << in.rdbuf();
    return out.str();
}

bool
hasTraceCsv(const std::string& dir)
{
    std::error_code ec;
    for (const auto& entry :
         std::filesystem::directory_iterator(dir, ec)) {
        if (entry.path().extension() == ".csv")
            return true;
    }
    return false;
}

} // namespace

std::string
benchSetupFingerprint(const BenchSetup& setup)
{
    // format=3: the fingerprint covers the reference accelerator
    // hardware configuration. The profiled layer latencies are a
    // function of these models, so a cached Phase-1 profile must not
    // survive a hardware change (per-node fleet mixes scale relative
    // to this reference at simulation time and live in the cell
    // config, not the cache).
    char buf[512];
    const SangerConfig& sg = setup.sangerHw;
    const EyerissV2Config& ey = setup.eyerissHw;
    std::snprintf(
        buf, sizeof(buf),
        "format=3 samples=%d seed=%llu cnnRate=%.17g "
        "attnn=%d cnn=%d "
        "sanger=%d,%.17g,%.17g,%.17g,%.17g,%.17g,%.17g "
        "eyeriss=%d,%.17g,%.17g,%.17g,%.17g,%.17g,%.17g,%.17g\n",
        setup.samplesPerModel,
        static_cast<unsigned long long>(setup.seed),
        setup.cnnSparsityRate, setup.includeAttnn ? 1 : 0,
        setup.includeCnn ? 1 : 0,
        sg.peCount, sg.clockHz, sg.denseEfficiency,
        sg.sparseEfficiency, sg.maskPredictOverhead,
        sg.minMaskDensity, sg.layerOverheadCycles,
        ey.peCount, ey.clockHz, ey.dramBandwidthBps,
        ey.mappingEfficiency, ey.minEffectiveFraction,
        ey.layerOverheadCycles, ey.bytesPerElement, ey.indexOverhead);
    return buf;
}

std::unique_ptr<BenchContext>
makeBenchContext(BenchSetup setup)
{
    return makeBenchContext(setup, "");
}

std::unique_ptr<BenchContext>
makeBenchContext(BenchSetup setup, const std::string& trace_cache_dir)
{
    auto ctx = std::make_unique<BenchContext>();
    ctx->sanger = SangerModel(setup.sangerHw);
    ctx->eyeriss = EyerissV2Model(setup.eyerissHw);

    const std::string manifest_path =
        trace_cache_dir.empty() ? "" : trace_cache_dir + "/manifest.txt";
    if (!trace_cache_dir.empty() &&
        readTextFile(manifest_path) == benchSetupFingerprint(setup) &&
        hasTraceCsv(trace_cache_dir)) {
        // Cache hit: replay the saved Phase-1 traces instead of
        // re-simulating the accelerators. Prefer the packed binary
        // blob (decimal-parsing the CSVs costs more than profiling);
        // fall back to the CSVs when it is missing or stale.
        if (!TraceRegistry::loadAllBinary(
                trace_cache_dir + "/traces.bin", ctx->registry))
            ctx->registry = TraceRegistry::loadAll(trace_cache_dir);
        for (const std::string& name : benchModelNames(setup))
            ctx->models.push_back(makeModelByName(name));
        ctx->lut = ctx->registry.buildLut();
        return ctx;
    }

    ProfileConfig pcfg;
    pcfg.numSamples = setup.samplesPerModel;
    pcfg.seed = setup.seed;
    pcfg.cnnSparsityRate = setup.cnnSparsityRate;

    // The model list is defined once (benchModelNames) so the cold
    // and cache-hit paths cannot drift apart.
    for (const std::string& name : benchModelNames(setup)) {
        ModelDesc model = makeModelByName(name);
        if (model.family == ModelFamily::CNN) {
            for (SparsityPattern pattern : cnnPatterns()) {
                ctx->registry.add(profileCnn(
                    model, pattern, defaultProfileFor(name),
                    ctx->eyeriss, pcfg));
            }
        } else {
            ctx->registry.add(profileAttn(model, defaultProfileFor(name),
                                          ctx->sanger, pcfg));
        }
        ctx->models.push_back(std::move(model));
    }

    ctx->lut = ctx->registry.buildLut();

    if (!trace_cache_dir.empty()) {
        // Invalidate first: killing the old manifest before touching
        // any trace file means an interrupted rewrite can never leave
        // a matching manifest over mismatched traces. Then drop stale
        // CSVs from the previous setup and write; the new manifest
        // goes last (a partial write must not look like a valid
        // cache).
        std::error_code ec;
        std::filesystem::create_directories(trace_cache_dir, ec);
        std::filesystem::remove(manifest_path, ec);
        for (const auto& entry :
             std::filesystem::directory_iterator(trace_cache_dir, ec)) {
            if (entry.path().extension() == ".csv")
                std::filesystem::remove(entry.path(), ec);
        }
        ctx->registry.saveAll(trace_cache_dir);
        ctx->registry.saveAllBinary(trace_cache_dir + "/traces.bin");
        std::ofstream manifest(manifest_path);
        fatalIf(!manifest, "makeBenchContext: cannot write " +
                               manifest_path);
        manifest << benchSetupFingerprint(setup);
    }
    return ctx;
}

std::vector<std::string>
table5Schedulers()
{
    return {"FCFS", "SJF", "SDRM3", "PREMA", "Planaria", "Dysta"};
}

std::vector<std::string>
allSchedulers()
{
    return PolicyRegistry::global().schedulerNames();
}

std::unique_ptr<Scheduler>
makeSchedulerByName(const std::string& spec, const BenchContext& ctx,
                    WorkloadKind kind)
{
    return PolicyRegistry::global().makeScheduler(spec, ctx, kind);
}

EngineResult
runOne(const BenchContext& ctx, const WorkloadConfig& workload,
       Scheduler& policy)
{
    std::vector<Request> requests =
        generateWorkload(workload, ctx.registry);
    SchedulerEngine engine;
    return engine.run(requests, policy);
}

Metrics
runAveraged(const BenchContext& ctx, WorkloadConfig workload,
            const std::string& scheduler_name, int num_seeds)
{
    fatalIf(num_seeds <= 0, "runAveraged: need at least one seed");
    SweepCell cell;
    cell.workload = workload;
    cell.scheduler = scheduler_name;

    std::vector<Metrics> runs;
    runs.reserve(static_cast<size_t>(num_seeds));
    for (const SweepCell& c : seedReplicas(cell, num_seeds))
        runs.push_back(runSweepCell(ctx, c).metrics);
    return averageMetrics(runs);
}

std::vector<std::string>
allDispatchers()
{
    return PolicyRegistry::global().dispatcherNames();
}

std::unique_ptr<Dispatcher>
makeDispatcherByName(const std::string& spec, const BenchContext& ctx,
                     WorkStealingConfig steal_cfg)
{
    return PolicyRegistry::global().makeDispatcher(spec, ctx,
                                                   steal_cfg);
}

ClusterResult
runCluster(const BenchContext& ctx, const WorkloadConfig& workload,
           const ClusterRunConfig& cluster)
{
    ClusterConfig cfg;
    if (!cluster.nodes.empty()) {
        cfg.nodes = cluster.nodes;
    } else {
        fatalIf(cluster.numNodes == 0,
                "runCluster: need at least one node");
        cfg = homogeneousCluster(cluster.numNodes);
    }
    cfg.admission = cluster.admission;
    cfg.lut = &ctx.lut;
    cfg.nodeEvents = cluster.nodeEvents;
    cfg.onFailure = cluster.onFailure;
    cfg.telemetry = cluster.telemetry;
    cfg.calendar = cluster.calendar;
    cfg.metricsKind = cluster.metricsKind;

    // Chaos knobs: the failure process is constructed per run and
    // must outlive engine.run(); the sim core seeds its RNG stream
    // from the workload seed, so seed replicas see different fault
    // timelines but reruns are bit-identical.
    std::unique_ptr<FailureProcess> chaos_proc;
    if (!cluster.chaos.empty()) {
        chaos_proc =
            PolicyRegistry::global().makeFailureProcess(cluster.chaos);
        cfg.chaos = chaos_proc.get();
    }
    cfg.chaosSeed = workload.seed;
    cfg.retry = retryConfigFromSpec(cluster.retry);
    cfg.hedge = hedgeConfigFromSpec(cluster.hedge);
    cfg.brownout = brownoutConfigFromSpec(cluster.brownout);
    cfg.tierWeights = tierWeightsFromSpec(cluster.tiers);
    cfg.batching = batchConfigFromSpec(cluster.batcher);

    std::unique_ptr<LatencyEstimator> admission_est;
    if (!cluster.admissionEstimator.empty()) {
        admission_est = PolicyRegistry::global().makeEstimator(
            cluster.admissionEstimator, ctx);
        cfg.admissionEstimator = admission_est.get();
    }

    auto dispatcher = makeDispatcherByName(cluster.dispatcher, ctx,
                                           cluster.stealing);
    ClusterEngine engine(cfg);
    // A per-node scheduler suffix in the fleet spec ("sanger:2=sjf")
    // overrides the cluster-wide policy for those nodes.
    PolicyFactory factory = [&](const NodeProfile& profile, int) {
        const std::string& spec = profile.scheduler.empty()
                                      ? cluster.nodeScheduler
                                      : profile.scheduler;
        return makeSchedulerByName(spec, ctx, workload.kind);
    };

    if (cluster.streaming) {
        WorkloadArrivalSource source(workload, ctx.registry);
        return engine.run(source, *dispatcher, factory);
    }
    std::vector<Request> requests =
        generateWorkload(workload, ctx.registry);
    return engine.run(requests, *dispatcher, factory);
}

} // namespace dysta
