#include "sim/core.hh"

#include <algorithm>
#include <cmath>
#include <deque>

#include "chaos/failure.hh"
#include "obs/telemetry.hh"
#include "util/logging.hh"
#include "util/stats.hh"

namespace dysta {

namespace {

/**
 * The event loop shared by both runSimulation overloads. Arrivals
 * are pumped lazily from `source` — exactly one pending arrival in
 * the calendar at any time. Because sources emit arrivals in
 * non-decreasing time order and the Arrival kind wins every
 * same-time tie, this pops events in the same order as pushing all
 * arrivals up front, so the materialized path keeps its historical
 * schedule bit for bit. When `sink` is set, retired requests are
 * recorded there and handed back to the source; the materialized
 * caller passes nullptr and computes metrics from its surviving
 * vector instead.
 */
SimResult
runSimulationLoop(const SimConfig& cfg, ArrivalSource& source,
                  Dispatcher& dispatcher,
                  const PolicyFactory& make_policy,
                  StreamingMetrics* sink)
{
    fatalIf(cfg.nodes.empty(), "runSimulation: need at least one node");
    fatalIf(cfg.admission.enabled && cfg.lut == nullptr &&
                cfg.admissionEstimator == nullptr,
            "runSimulation: admission control requires a ModelInfoLut");
    fatalIf(cfg.admission.enabled && cfg.admission.margin <= 0.0,
            "runSimulation: admission margin must be positive");
    fatalIf(cfg.brownout.enabled && !cfg.admission.enabled,
            "runSimulation: brown-out degradation requires admission "
            "control");
    fatalIf(cfg.retry.enabled &&
                (cfg.retry.maxRetries < 0 ||
                 cfg.retry.timeoutFactor <= 0.0 ||
                 cfg.retry.backoff < 1.0 || cfg.retry.budget < 0.0),
            "runSimulation: malformed retry config");
    fatalIf(cfg.hedge.enabled &&
                (cfg.hedge.factor <= 0.0 || cfg.hedge.minSamples < 1),
            "runSimulation: malformed hedge config");
    for (double w : cfg.tierWeights)
        fatalIf(w <= 0.0,
                "runSimulation: tier weights must be positive");

    // Whether any resilience mechanism is configured. Scripted
    // nodeEvents alone do NOT activate resilience reporting — their
    // reports must stay byte-identical to pre-chaos builds.
    const bool resilience_on =
        cfg.chaos != nullptr || cfg.retry.enabled ||
        cfg.hedge.enabled || cfg.brownout.enabled ||
        !cfg.tierWeights.empty();

    // Dynamic batching. A rebalancing dispatcher would try to
    // migrate requests that are mid-step inside a running batch —
    // the migration contract cannot express that — so the
    // combination is rejected up front instead of panicking mid-run.
    const bool batch_on = cfg.batching.enabled;
    fatalIf(batch_on && dispatcher.wantsRebalance(),
            "runSimulation: dynamic batching is incompatible with "
            "rebalancing (work-stealing) dispatchers");

    SimResult result;
    dispatcher.reset();

    std::vector<std::unique_ptr<SimNode>> nodes;
    nodes.reserve(cfg.nodes.size());
    for (size_t i = 0; i < cfg.nodes.size(); ++i) {
        auto policy = make_policy(cfg.nodes[i], static_cast<int>(i));
        panicIf(policy == nullptr,
                "runSimulation: policy factory returned null");
        nodes.push_back(std::make_unique<SimNode>(
            static_cast<int>(i), cfg.nodes[i], std::move(policy)));
    }
    if (batch_on) {
        for (auto& node : nodes)
            node->setBatching(cfg.batching);
    }

    Telemetry* tele = cfg.telemetry;
    if (tele) {
        tele->beginRun(nodes.size());
        for (auto& node : nodes)
            node->setTelemetry(tele);
    }

    // All admission estimates flow through the estimator layer; the
    // default is the static LUT view of queued work.
    std::unique_ptr<LutEstimator> owned_estimator;
    const LatencyEstimator* admission_est = cfg.admissionEstimator;
    if (cfg.admission.enabled && admission_est == nullptr) {
        owned_estimator = std::make_unique<LutEstimator>(*cfg.lut);
        admission_est = owned_estimator.get();
    }

    std::unique_ptr<Calendar> calendar = makeCalendar(cfg.calendar);

    // Prime the lazy arrival pump: the first arrival enters the
    // calendar now, each later one when its predecessor pops.
    auto pushArrival = [&](Request* req) {
        panicIf(req->trace == nullptr || req->trace->layers.empty(),
                "runSimulation: request without a trace");
        SimEvent ev;
        ev.time = req->arrival;
        ev.kind = SimEventKind::Arrival;
        ev.req = req;
        calendar->push(ev);
    };
    if (Request* first = source.next())
        pushArrival(first);

    for (const NodeEvent& nev : cfg.nodeEvents) {
        fatalIf(nev.node < 0 ||
                    static_cast<size_t>(nev.node) >= nodes.size(),
                "runSimulation: node event for an unknown node");
        fatalIf(nev.time < 0.0,
                "runSimulation: node event before time zero");
        SimEvent ev;
        ev.time = nev.time;
        ev.kind = SimEventKind::NodeChange;
        ev.node = nev.node;
        ev.nodeEvent = nev.kind;
        calendar->push(ev);
    }

    // The stochastic fault pump: exactly one chaos NodeChange lives
    // in the calendar (the ArrivalSource contract), refilled when it
    // pops. Drawing from its own RNG stream keeps every workload
    // stream untouched — chaos off is bit-identical to the seed.
    bool chaos_dry = cfg.chaos == nullptr;
    double chaos_last = 0.0;
    auto pushChaos = [&]() {
        if (chaos_dry)
            return;
        NodeEvent nev;
        if (!cfg.chaos->next(nev)) {
            chaos_dry = true;
            return;
        }
        fatalIf(nev.node < 0 ||
                    static_cast<size_t>(nev.node) >= nodes.size(),
                "runSimulation: chaos event for an unknown node");
        fatalIf(nev.time < chaos_last,
                "runSimulation: chaos events must be emitted in "
                "non-decreasing time order");
        chaos_last = nev.time;
        SimEvent ev;
        ev.time = nev.time;
        ev.kind = SimEventKind::NodeChange;
        ev.node = nev.node;
        ev.nodeEvent = nev.kind;
        ev.chaos = true;
        calendar->push(ev);
    };
    if (cfg.chaos != nullptr) {
        cfg.chaos->reset(cfg.nodes, cfg.chaosSeed);
        pushChaos();
    }

    // Estimated queued work on a node in node-seconds: a fast node
    // absorbs the same queue sooner.
    auto delayOn = [&](const SimNode& node, const Request& req) {
        double work = 0.0;
        for (const Request* r : node.queue())
            work += admission_est->remaining(*r);
        return (work + admission_est->isolated(req)) /
               node.profile().speedFactor;
    };

    auto pushLayerEnd = [&](const SimNode& node, double end) {
        SimEvent ev;
        ev.time = end;
        ev.kind = SimEventKind::LayerComplete;
        ev.node = node.id();
        ev.epoch = node.epoch();
        calendar->push(ev);
    };

    // At most one pending BatchRelease per node. The hold window can
    // only move *later* (the oldest waiter sheds or starts), so an
    // in-flight release that fires early just re-evaluates the hold
    // and re-arms; no stale-event filtering is needed.
    std::vector<double> release_pending(nodes.size(), -1.0);
    auto pushBatchRelease = [&](const SimNode& node, double at) {
        size_t idx = static_cast<size_t>(node.id());
        if (release_pending[idx] >= 0.0)
            return;
        release_pending[idx] = at;
        SimEvent ev;
        ev.time = at;
        ev.kind = SimEventKind::BatchRelease;
        ev.node = node.id();
        calendar->push(ev);
    };

    size_t finished = 0;
    size_t shed_count = 0;
    bool decision_pending = false;

    auto pushDecision = [&](double now) {
        if (decision_pending)
            return;
        SimEvent decide;
        decide.time = now;
        decide.kind = SimEventKind::Decision;
        calendar->push(decide);
        decision_pending = true;
    };

    auto anyAvailable = [&]() {
        for (const auto& node : nodes) {
            if (node->available())
                return true;
        }
        return false;
    };

    // --- chaos-engine run state --------------------------------------
    // Availability bookkeeping (cheap; reported only when a
    // resilience mechanism is on).
    std::vector<double> down_since(nodes.size(), -1.0);
    double down_sec = 0.0;
    double repair_sec = 0.0;
    size_t repair_count = 0;
    size_t fail_count = 0;
    size_t timeout_count = 0;
    size_t retries_total = 0;
    size_t hedge_count = 0;
    size_t hedge_wins = 0;
    size_t brownout_sheds = 0;
    const size_t n_tiers = cfg.tierWeights.size();
    std::vector<double> tier_completed(n_tiers, 0.0);
    std::vector<double> tier_violations(n_tiers, 0.0);
    std::vector<double> tier_shed(n_tiers, 0.0);

    // Online tail-latency quantile seeding the hedge delay.
    P2Quantile hedge_lat(cfg.hedge.enabled ? cfg.hedge.quantile : 0.5);

    // Hedge clones never come from the arrival source: they live in
    // a loop-owned pool (deque for pointer stability) and recycle
    // through a free list when their hedge resolves.
    std::deque<Request> clone_pool;
    std::vector<Request*> free_clones;
    auto allocClone = [&]() -> Request* {
        if (!free_clones.empty()) {
            Request* c = free_clones.back();
            free_clones.pop_back();
            return c;
        }
        clone_pool.emplace_back();
        return &clone_pool.back();
    };
    auto dropClone = [&](Request* clone) {
        clone->hedgePeer = nullptr;
        free_clones.push_back(clone);
    };

    // Pull one copy of a request back from wherever it sits. A
    // running cancel bumps the node's epoch (pending layer-complete
    // goes stale), so the node needs a decision sweep to pick up
    // other work.
    auto cancelCopy = [&](Request* req, double now) {
        if (req->lastNode < 0)
            return;
        if (nodes[req->lastNode]->cancel(req, now) ==
            SimNode::CancelOutcome::Running)
            pushDecision(now);
    };

    auto accountCompleted = [&](const Request& req) {
        if (cfg.hedge.enabled)
            hedge_lat.add(req.finishTime - req.arrival);
        if (req.tier >= 0 && static_cast<size_t>(req.tier) < n_tiers) {
            tier_completed[req.tier] += 1.0;
            if (req.violated())
                tier_violations[req.tier] += 1.0;
        }
    };

    auto shedRequest = [&](Request* req, double now) {
        panicIf(req->isHedgeClone,
                "runSimulation: tried to shed a hedge clone");
        if (req->hedgePeer != nullptr) {
            Request* clone = req->hedgePeer;
            if (tele)
                tele->hedgeCancel(*clone, clone->lastNode, now);
            cancelCopy(clone, now);
            dropClone(clone);
            req->hedgePeer = nullptr;
        }
        ++req->cancelEpoch;
        req->shed = true;
        ++shed_count;
        if (req->tier >= 0 && static_cast<size_t>(req->tier) < n_tiers)
            tier_shed[req->tier] += 1.0;
        dispatcher.onShed(*req, now);
        if (tele)
            tele->shed(*req, now);
        if (sink)
            sink->recordShed(*req);
        source.retire(req, now);
    };

    // Place one request (fresh arrival, failure re-dispatch or
    // retry): dispatcher choice, then admission, then enqueue +
    // decision. Returns false when the request was shed instead.
    // Hedge clones never come through here — they are enqueued
    // directly by the Hedge handler, bypassing placement, admission
    // and dispatch telemetry.
    auto placeRequest = [&](Request* req, double now) -> bool {
        if (!anyAvailable()) {
            // The whole fleet is draining or down; nobody can take
            // new work, so the front door must drop it.
            shedRequest(req, now);
            return false;
        }
        size_t pick = dispatcher.selectNode(*req, nodes, now);
        panicIf(pick >= nodes.size(),
                "runSimulation: dispatcher returned invalid node");
        panicIf(!nodes[pick]->available(),
                "runSimulation: dispatcher placed a request on an "
                "unavailable node");

        if (cfg.admission.enabled) {
            // Brown-out: escalate the margin with the request's tier
            // so low-priority work sheds first as delay rises.
            double margin = cfg.admission.margin;
            if (cfg.brownout.enabled)
                margin *= 1.0 + cfg.brownout.step * req->tier;
            if (now + margin * delayOn(*nodes[pick], *req) >
                req->deadline) {
                // The chosen node cannot make the deadline: fall
                // back to the least-loaded available node before
                // shedding, so an admission-blind placement (e.g.
                // round-robin) doesn't drop requests the rest of the
                // fleet could still serve.
                size_t best = nodes.size();
                double best_delay = 0.0;
                for (size_t i = 0; i < nodes.size(); ++i) {
                    if (!nodes[i]->available())
                        continue;
                    double delay = delayOn(*nodes[i], *req);
                    if (best == nodes.size() || delay < best_delay) {
                        best = i;
                        best_delay = delay;
                    }
                }
                if (now + margin * best_delay > req->deadline) {
                    if (cfg.brownout.enabled) {
                        ++brownout_sheds;
                        if (tele)
                            tele->brownout(*req, now);
                    }
                    shedRequest(req, now);
                    return false;
                }
                pick = best;
            }
        }

        nodes[pick]->enqueue(req, now);
        if (tele)
            tele->dispatch(*req, static_cast<int>(pick),
                           nodes[pick]->outstanding(), now);
        // Arm hedged dispatch once the latency quantile is seeded:
        // if the request is still unfinished after the tail delay, a
        // duplicate goes to a second node. Stale events are filtered
        // by (rid, cancelEpoch).
        if (cfg.hedge.enabled && req->hedgePeer == nullptr &&
            hedge_lat.count() >=
                static_cast<size_t>(cfg.hedge.minSamples)) {
            SimEvent hev;
            hev.time = now + cfg.hedge.factor * hedge_lat.value();
            hev.kind = SimEventKind::Hedge;
            hev.req = req;
            hev.rid = req->id;
            hev.epoch = req->cancelEpoch;
            calendar->push(hev);
        }
        // Dispatch after every arrival of this instant has been
        // placed (admit-then-select): the Decision kind sorts
        // after all same-time arrivals and completions.
        pushDecision(now);
        return true;
    };

    // Per-attempt deadline allowance: retries re-arm with the
    // allowance scaled by backoff^attempts.
    auto pushTimeout = [&](Request* req, double at) {
        req->timeoutAt = at;
        SimEvent ev;
        ev.time = at;
        ev.kind = SimEventKind::Timeout;
        ev.req = req;
        ev.rid = req->id;
        ev.epoch = req->cancelEpoch;
        calendar->push(ev);
    };

    // Validate and apply the moves of a rebalancing dispatcher. The
    // Migration contract is enforced here (and in removeQueued), so
    // a buggy policy fails deterministically instead of corrupting
    // node state.
    auto applyRebalance = [&](double now) {
        if (!dispatcher.wantsRebalance())
            return false;
        std::vector<Migration> moves = dispatcher.rebalance(nodes, now);
        for (const Migration& m : moves) {
            panicIf(m.req == nullptr || m.from >= nodes.size() ||
                        m.to >= nodes.size() || m.from == m.to,
                    "runSimulation: malformed migration");
            panicIf(!nodes[m.to]->available(),
                    "runSimulation: migration onto an unavailable "
                    "node");
            nodes[m.from]->removeQueued(m.req, now);
            nodes[m.to]->enqueue(m.req, now);
            if (tele)
                tele->migrate(*m.req, static_cast<int>(m.from),
                              static_cast<int>(m.to),
                              nodes[m.from]->outstanding(),
                              nodes[m.to]->outstanding(), now);
        }
        return !moves.empty();
    };

    // Retire one completed logical request: resolve any hedge pair,
    // account it, give rebalancers a look, and hand the slot back to
    // the source. Shared verbatim by the scalar and batch completion
    // paths so batching cannot drift the retirement semantics.
    auto retireCompleted = [&](SimNode& node, Request* done,
                               double now) {
        // First completion of a hedged pair wins; the loser is
        // pulled back and only the primary is ever recorded/retired
        // as the logical request.
        Request* logical = done;
        if (done->isHedgeClone) {
            Request* prim = done->hedgePeer;
            panicIf(prim == nullptr,
                    "runSimulation: orphan hedge clone completed");
            ++hedge_wins;
            if (tele)
                tele->hedgeCancel(*prim, prim->lastNode, now);
            cancelCopy(prim, now);
            // The estimator layer keys per-request state by id
            // (shared by both copies), so completing the clone
            // retires the primary's entry too.
            dispatcher.onComplete(node, *done, now);
            prim->finishTime = done->finishTime;
            prim->executedTime = done->executedTime;
            prim->nextLayer = prim->layerCount();
            ++prim->cancelEpoch;
            prim->hedgePeer = nullptr;
            dropClone(done);
            logical = prim;
        } else {
            if (done->hedgePeer != nullptr) {
                Request* clone = done->hedgePeer;
                if (tele)
                    tele->hedgeCancel(*clone, clone->lastNode, now);
                cancelCopy(clone, now);
                dropClone(clone);
                done->hedgePeer = nullptr;
            }
            ++done->cancelEpoch;
            dispatcher.onComplete(node, *done, now);
        }
        accountCompleted(*logical);
        ++finished;
        // A completion is a load-balance change worth a migration
        // look; idle nodes that receive stolen work are started by
        // the pushed decision sweep.
        if (applyRebalance(now))
            pushDecision(now);
        if (sink)
            sink->recordCompleted(*logical);
        // All callbacks are past; the source may recycle the slot
        // (no node holds a reference: completion cleared
        // running/lastRun and the ready queue).
        source.retire(logical, now);
    };

    const size_t total = source.total();
    double sim_now = 0.0;

    while (finished + shed_count < total) {
        panicIf(calendar->empty(),
                "runSimulation: empty calendar with unfinished "
                "requests");
        SimEvent ev = calendar->pop();
        double now = ev.time;
        sim_now = now;
        ++result.eventsProcessed;

        switch (ev.kind) {
          case SimEventKind::Arrival: {
            // Refill the pump before handling this arrival, so a
            // same-time successor is in the calendar (and wins the
            // kind tie-break) exactly as if pushed up front.
            if (Request* next = source.next())
                pushArrival(next);
            Request* req = ev.req;
            if (resilience_on) {
                // Chaos state must be pristine whatever the source's
                // recycling did (cancelEpoch stays monotonic per
                // slot: any stale event from a prior tenant also
                // fails the rid check).
                req->tier = n_tiers == 0
                                ? 0
                                : tierOfRequest(req->id,
                                                cfg.tierWeights,
                                                cfg.chaosSeed);
                req->attempts = 0;
                req->timeoutAt = -1.0;
                req->hedgePeer = nullptr;
                req->isHedgeClone = false;
            }
            if (tele)
                tele->arrival(*req, now);
            bool placed = placeRequest(req, now);
            if (placed && cfg.retry.enabled) {
                double window = req->deadline - req->arrival;
                if (window > 0.0)
                    pushTimeout(req,
                                req->arrival +
                                    cfg.retry.timeoutFactor * window);
            }
            break;
          }

          case SimEventKind::NodeChange: {
            // Refill the fault pump before handling, mirroring the
            // arrival pump: a same-time successor is in the calendar
            // exactly as if pushed up front.
            if (ev.chaos)
                pushChaos();
            SimNode& node = *nodes[ev.node];
            // Emitted before the displaced work is re-placed, so the
            // fail instant precedes its restarts/dispatches in the
            // event log.
            if (tele)
                tele->nodeChange(ev.node, ev.nodeEvent, now);
            switch (ev.nodeEvent) {
              case NodeEventKind::Drain:
                node.drain();
                break;
              case NodeEventKind::Fail: {
                // A fail on an already-Down node (chaos composing
                // with scripted events) is a no-op: no new down
                // spell, no displaced work.
                bool was_down = node.state() == NodeState::Down;
                const Request* inflight = node.current();
                std::vector<Request*> displaced = node.fail(now);
                if (!was_down) {
                    ++fail_count;
                    down_since[ev.node] = now;
                }
                // Hedge clones dissolve in place: the primary (on
                // another node, or co-displaced below) is the
                // logical request and simply loses its duplicate.
                for (Request* req : displaced) {
                    if (!req->isHedgeClone)
                        continue;
                    if (req->hedgePeer != nullptr)
                        req->hedgePeer->hedgePeer = nullptr;
                    if (tele)
                        tele->hedgeCancel(*req, ev.node, now);
                    dropClone(req);
                }
                for (Request* req : displaced) {
                    if (req->isHedgeClone)
                        continue;
                    if (req->hedgePeer != nullptr) {
                        // Displaced primary with a live clone
                        // elsewhere: dissolve the hedge before the
                        // primary goes through the normal
                        // restart/shed path.
                        Request* clone = req->hedgePeer;
                        if (tele)
                            tele->hedgeCancel(*clone, clone->lastNode,
                                              now);
                        cancelCopy(clone, now);
                        dropClone(clone);
                        req->hedgePeer = nullptr;
                    }
                    bool started =
                        req == inflight || req->nextLayer > 0;
                    if (started &&
                        cfg.onFailure == RestartPolicy::Shed) {
                        shedRequest(req, now);
                        continue;
                    }
                    if (started) {
                        // Activations died with the node: restart
                        // from layer 0 (enqueue re-zeroes the rest).
                        req->nextLayer = 0;
                        req->executedTime = 0.0;
                        if (tele)
                            tele->restartFromFailure(*req, ev.node,
                                                     now);
                    }
                    placeRequest(req, now);
                }
                break;
              }
              case NodeEventKind::Recover:
                // Close the down spell (a recover of a never-failed
                // or merely draining node has none to close).
                if (down_since[ev.node] >= 0.0) {
                    double spell = now - down_since[ev.node];
                    down_sec += spell;
                    repair_sec += spell;
                    ++repair_count;
                    down_since[ev.node] = -1.0;
                }
                node.recover();
                // Give rebalancing dispatchers (and any queued work
                // the recovery logically unblocks) a same-instant
                // decision sweep.
                pushDecision(now);
                break;
            }
            break;
          }

          case SimEventKind::Decision: {
            decision_pending = false;
            applyRebalance(now);
            for (auto& node : nodes) {
                if (node->state() == NodeState::Down ||
                    node->busy() || node->outstanding() == 0)
                    continue;
                if (batch_on) {
                    // Hold for more batchable work while the delay
                    // window allows; the armed BatchRelease starts
                    // the batch when it expires.
                    double release_at = 0.0;
                    if (node->batchShouldHold(now, &release_at)) {
                        pushBatchRelease(*node, release_at);
                        continue;
                    }
                    pushLayerEnd(*node, node->beginBatch(now));
                    continue;
                }
                pushLayerEnd(*node, node->beginBlock(now));
            }
            break;
          }

          case SimEventKind::LayerComplete: {
            SimNode& node = *nodes[ev.node];
            if (ev.epoch != node.epoch()) {
                // The layer this event announced was abandoned by a
                // node failure after it was scheduled; nothing to do.
                break;
            }

            if (batch_on) {
                // One batch step ends: every member advanced its own
                // next layer over the shared step window.
                const Request* anchor = node.current();
                if (cfg.recordEvents) {
                    double lat = node.batchStepLatency();
                    for (const Request* m : node.activeBatch())
                        result.events.push_back({node.id(), m->id,
                                                 m->nextLayer,
                                                 now - lat, now});
                }
                std::vector<Request*> completed =
                    node.completeBatchStep();
                // The anchor drives the sparsity feedback, exactly
                // as in the scalar path.
                dispatcher.onLayerComplete(
                    node, *anchor, now,
                    node.lastMonitoredSparsity());
                for (Request* done : completed)
                    retireCompleted(node, done, now);

                if (node.blockContinues()) {
                    // Continuous batching: newly-queued work may join
                    // the running batch at this layer boundary.
                    node.batchJoin(now);
                    pushLayerEnd(node, node.continueBatchStep(now));
                } else if (node.outstanding() > 0) {
                    double release_at = 0.0;
                    if (node.batchShouldHold(now, &release_at))
                        pushBatchRelease(node, release_at);
                    else
                        pushLayerEnd(node, node.beginBatch(now));
                }
                break;
            }

            const Request* req = node.current();
            size_t layer_idx = req->nextLayer;

            if (cfg.recordEvents) {
                double lat = node.layerLatency(
                    req->trace->layers[layer_idx]);
                result.events.push_back({node.id(), req->id,
                                         layer_idx, now - lat, now});
            }

            Request* done = node.completeLayer();
            dispatcher.onLayerComplete(node, *req, now,
                                       node.lastMonitoredSparsity());
            if (done != nullptr)
                retireCompleted(node, done, now);

            // Continue the non-preemptible block, or make a fresh
            // dispatch decision at the block boundary.
            if (node.blockContinues())
                pushLayerEnd(node, node.continueBlock(now));
            else if (node.outstanding() > 0)
                pushLayerEnd(node, node.beginBlock(now));
            break;
          }

          case SimEventKind::Timeout: {
            Request* req = ev.req;
            // Stale when the attempt it was armed for is gone:
            // completed, shed, already retried — or the arena slot
            // was recycled entirely (rid mismatch).
            if (ev.rid != req->id || ev.epoch != req->cancelEpoch)
                break;
            ++timeout_count;
            if (tele)
                tele->timeout(*req, req->lastNode, req->attempts,
                              now);
            // The attempt overran its allowance: pull back both
            // copies (a timeout dissolves any hedge) and retry from
            // scratch while per-request attempts and the fleet-wide
            // retry budget allow, else shed.
            if (req->hedgePeer != nullptr) {
                Request* clone = req->hedgePeer;
                if (tele)
                    tele->hedgeCancel(*clone, clone->lastNode, now);
                cancelCopy(clone, now);
                dropClone(clone);
                req->hedgePeer = nullptr;
            }
            cancelCopy(req, now);
            dispatcher.onCancel(*req, now);
            ++req->cancelEpoch;
            bool budget_ok =
                static_cast<double>(retries_total) <
                cfg.retry.budget * static_cast<double>(total);
            if (req->attempts < cfg.retry.maxRetries && budget_ok) {
                ++req->attempts;
                ++retries_total;
                if (tele)
                    tele->retry(*req, req->attempts, now);
                if (placeRequest(req, now)) {
                    double window = req->deadline - req->arrival;
                    double allowance =
                        cfg.retry.timeoutFactor * window *
                        std::pow(cfg.retry.backoff, req->attempts);
                    pushTimeout(req, now + allowance);
                }
            } else {
                shedRequest(req, now);
            }
            break;
          }

          case SimEventKind::Hedge: {
            Request* req = ev.req;
            if (ev.rid != req->id || ev.epoch != req->cancelEpoch)
                break;
            if (req->hedgePeer != nullptr || req->lastNode < 0)
                break; // already hedged / not currently placed
            // Duplicate onto the least-outstanding available node
            // other than the primary's (ties to the lowest id); no
            // such node means no hedge this round.
            size_t best = nodes.size();
            for (size_t i = 0; i < nodes.size(); ++i) {
                if (!nodes[i]->available() ||
                    static_cast<int>(i) == req->lastNode)
                    continue;
                if (best == nodes.size() ||
                    nodes[i]->outstanding() <
                        nodes[best]->outstanding())
                    best = i;
            }
            if (best == nodes.size())
                break;
            Request* clone = allocClone();
            *clone = *req;
            clone->isHedgeClone = true;
            clone->hedgePeer = req;
            clone->lastNode = -1;
            req->hedgePeer = clone;
            ++hedge_count;
            nodes[best]->enqueue(clone, now);
            if (tele)
                tele->hedge(*req, static_cast<int>(best), now);
            pushDecision(now);
            break;
          }

          case SimEventKind::BatchRelease: {
            SimNode& node = *nodes[ev.node];
            release_pending[static_cast<size_t>(ev.node)] = -1.0;
            if (node.state() == NodeState::Down || node.busy() ||
                node.outstanding() == 0)
                break; // the work started (or vanished) another way
            double release_at = 0.0;
            if (node.batchShouldHold(now, &release_at))
                pushBatchRelease(node, release_at); // window moved
            else
                pushLayerEnd(node, node.beginBatch(now));
            break;
          }
        }
    }

    result.perNodeCompleted.reserve(nodes.size());
    for (const auto& n : nodes) {
        result.perNodeCompleted.push_back(n->completedCount());
        result.preemptions += n->preemptionCount();
        result.decisions += n->decisionCount();
    }

    if (batch_on) {
        BatchStats& bs = result.batching;
        bs.active = true;
        size_t formed = 0, joins = 0, steps = 0, member_steps = 0;
        size_t fill_count = 0;
        double fill_wait = 0.0;
        for (const auto& n : nodes) {
            const SimNode::BatchCounters& c = n->batchCounters();
            formed += c.formed;
            joins += c.joins;
            steps += c.steps;
            member_steps += c.memberSteps;
            fill_wait += c.fillWaitSec;
            fill_count += c.fillWaitCount;
            bs.stragglerTaxSec += c.stragglerTaxSec;
        }
        bs.formed = static_cast<double>(formed);
        bs.joins = static_cast<double>(joins);
        bs.steps = static_cast<double>(steps);
        bs.meanOccupancy =
            steps > 0 ? static_cast<double>(member_steps) /
                            static_cast<double>(steps)
                      : 0.0;
        bs.meanFillWaitSec =
            fill_count > 0
                ? fill_wait / static_cast<double>(fill_count)
                : 0.0;
    }

    if (resilience_on) {
        ResilienceStats& rs = result.resilience;
        rs.active = true;
        // Down spells still open when the last request retired count
        // against availability but not as closed repairs.
        for (size_t i = 0; i < nodes.size(); ++i) {
            if (down_since[i] >= 0.0)
                down_sec += sim_now - down_since[i];
        }
        double horizon =
            static_cast<double>(nodes.size()) * sim_now;
        rs.availability =
            horizon > 0.0 ? 1.0 - down_sec / horizon : 1.0;
        rs.mttr = repair_count > 0
                      ? repair_sec / static_cast<double>(repair_count)
                      : 0.0;
        rs.failures = static_cast<double>(fail_count);
        rs.timeouts = static_cast<double>(timeout_count);
        rs.retries = static_cast<double>(retries_total);
        rs.retryAmplification =
            total > 0 ? (static_cast<double>(total) +
                         static_cast<double>(retries_total)) /
                            static_cast<double>(total)
                      : 1.0;
        rs.hedges = static_cast<double>(hedge_count);
        rs.hedgeWins = static_cast<double>(hedge_wins);
        rs.hedgeWinRate =
            hedge_count > 0 ? static_cast<double>(hedge_wins) /
                                  static_cast<double>(hedge_count)
                            : 0.0;
        rs.brownoutSheds = static_cast<double>(brownout_sheds);
        rs.tiers.resize(n_tiers);
        for (size_t t = 0; t < n_tiers; ++t) {
            rs.tiers[t].completed = tier_completed[t];
            rs.tiers[t].violations = tier_violations[t];
            rs.tiers[t].shed = tier_shed[t];
            // goodput needs the makespan: the overloads fill it in
            // after their metrics aggregation.
        }
    }

    if (tele)
        tele->endRun(sim_now);
    return result;
}

/**
 * Mirror the loop's resilience stats into the freshly-computed
 * metrics (which the overloads overwrite wholesale) and derive the
 * makespan-dependent per-tier goodput.
 */
void
finalizeResilience(SimResult& result)
{
    if (!result.resilience.active)
        return;
    double makespan = result.metrics.makespan;
    for (TierStats& t : result.resilience.tiers) {
        t.goodput = makespan > 0.0
                        ? (t.completed - t.violations) / makespan
                        : 0.0;
    }
    result.metrics.resilience = result.resilience;
}

/**
 * Mirror the loop's batching stats into the freshly-computed metrics
 * (which the overloads overwrite wholesale).
 */
void
finalizeBatch(SimResult& result)
{
    if (!result.batching.active)
        return;
    result.metrics.batching = result.batching;
}

} // namespace

SimResult
runSimulation(const SimConfig& cfg, std::vector<Request>& requests,
              Dispatcher& dispatcher, const PolicyFactory& make_policy)
{
    for (auto& req : requests) {
        panicIf(req.trace == nullptr || req.trace->layers.empty(),
                "runSimulation: request without a trace");
        req.nextLayer = 0;
        req.executedTime = 0.0;
        req.lastRunEnd = req.arrival;
        req.finishTime = -1.0;
        req.shed = false;
        req.tier = 0;
        req.attempts = 0;
        req.timeoutAt = -1.0;
        req.cancelEpoch = 0;
        req.hedgePeer = nullptr;
        req.isHedgeClone = false;
        req.lastNode = -1;
        req.nodeEnqueueTime = 0.0;
    }

    MaterializedSource source(requests);
    SimResult result = runSimulationLoop(cfg, source, dispatcher,
                                         make_policy, nullptr);
    // The vector survives the run, so metrics come from the same
    // full-vector aggregation as always (bit-identical to the seed).
    result.metrics = computeMetricsCompleted(requests);
    if (cfg.telemetry)
        result.metrics.estimators = cfg.telemetry->accuracy();
    finalizeResilience(result);
    finalizeBatch(result);
    return result;
}

SimResult
runSimulation(const SimConfig& cfg, ArrivalSource& source,
              Dispatcher& dispatcher, const PolicyFactory& make_policy)
{
    StreamingMetrics sink(cfg.metricsKind);
    SimResult result = runSimulationLoop(cfg, source, dispatcher,
                                         make_policy, &sink);
    result.metrics = sink.finalize();
    if (cfg.telemetry)
        result.metrics.estimators = cfg.telemetry->accuracy();
    finalizeResilience(result);
    finalizeBatch(result);
    return result;
}

} // namespace dysta
