/**
 * @file
 * Microbenchmark of the parallel sweep engine: cells/sec of the
 * Fig. 15 arrival-sweep grid (the built-in "fig15" scenario's
 * cells) executed serially (--jobs 1) vs on the thread pool, and
 * BenchContext build time cold (full Phase-1 profiling) vs from the
 * --trace-cache. Verifies on the way that the parallel run's
 * metrics are field-wise identical to the serial run's, and emits a
 * machine-readable BENCH_sweep.json for the perf trajectory.
 */

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "api/scenario.hh"
#include "util/args.hh"
#include "util/json.hh"
#include "util/table.hh"

using namespace dysta;

namespace {

double
secondsSince(std::chrono::steady_clock::time_point t0)
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - t0)
        .count();
}

bool
sameMetrics(const Metrics& a, const Metrics& b)
{
    return a.antt == b.antt && a.violationRate == b.violationRate &&
           a.throughput == b.throughput && a.stp == b.stp &&
           a.p50Turnaround == b.p50Turnaround &&
           a.p95Turnaround == b.p95Turnaround &&
           a.p99Turnaround == b.p99Turnaround &&
           a.p50Latency == b.p50Latency &&
           a.p95Latency == b.p95Latency &&
           a.p99Latency == b.p99Latency &&
           a.completed == b.completed && a.shed == b.shed &&
           a.makespan == b.makespan;
}

} // namespace

int
main(int argc, char** argv)
{
    ArgParser args("micro_sweep",
                   "Sweep-engine microbenchmark: serial vs parallel "
                   "cells/sec on the Fig. 15 grid, cold vs cached "
                   "context build, and a jobs=1 vs jobs=N "
                   "determinism check.");
    args.addInt("--requests", 200, "requests per workload");
    args.addInt("--seeds", 2, "seed replicas per grid point");
    args.addJobs();
    args.addTraceCache();
    args.addString("--out", "BENCH_sweep.json", "report path");
    args.parse(argc, argv);

    int requests = args.getInt("--requests");
    int seeds = args.getInt("--seeds");
    int jobs = args.getInt("--jobs");
    std::string cache_dir = args.getString("--trace-cache");
    if (cache_dir.empty())
        cache_dir = "micro-sweep-trace-cache";
    std::string out_path = args.getString("--out");

    BenchSetup setup;

    // Context build: cold profiling vs the setup-keyed trace cache.
    std::printf("Building BenchContext cold (Phase-1 profiling)...\n");
    auto t0 = std::chrono::steady_clock::now();
    auto ctx = makeBenchContext(setup);
    double cold_sec = secondsSince(t0);

    makeBenchContext(setup, cache_dir); // populate the cache
    t0 = std::chrono::steady_clock::now();
    auto cached_ctx = makeBenchContext(setup, cache_dir);
    double cached_sec = secondsSince(t0);

    // Sweep execution: the Fig. 15 grid, serial vs thread-pooled.
    ScenarioSpec grid = builtinScenario("fig15");
    grid.requests = requests;
    grid.seeds = seeds;
    std::vector<SweepCell> cells = scenarioCells(grid);
    std::printf("Running %zu cells serially...\n", cells.size());
    SweepRunner serial(*ctx, 1);
    t0 = std::chrono::steady_clock::now();
    std::vector<SweepCellResult> serial_results = serial.run(cells);
    double serial_sec = secondsSince(t0);

    std::printf("Running %zu cells on %d threads...\n", cells.size(),
                jobs);
    SweepRunner parallel(*ctx, jobs);
    t0 = std::chrono::steady_clock::now();
    std::vector<SweepCellResult> parallel_results =
        parallel.run(cells);
    double parallel_sec = secondsSince(t0);

    bool deterministic = serial_results.size() ==
                         parallel_results.size();
    for (size_t i = 0; deterministic && i < serial_results.size();
         ++i) {
        deterministic =
            sameMetrics(serial_results[i].metrics,
                        parallel_results[i].metrics) &&
            serial_results[i].decisions ==
                parallel_results[i].decisions &&
            serial_results[i].preemptions ==
                parallel_results[i].preemptions;
    }

    double n = static_cast<double>(cells.size());
    double serial_rate = n / serial_sec;
    double parallel_rate = n / parallel_sec;

    AsciiTable t("Sweep engine microbenchmark (" +
                 std::to_string(cells.size()) + " Fig. 15 cells, " +
                 std::to_string(requests) + " requests x " +
                 std::to_string(seeds) + " seeds)");
    t.setHeader({"measure", "serial / cold", "parallel / cached",
                 "ratio"});
    t.addRow({"cells/sec", AsciiTable::num(serial_rate, 1),
              AsciiTable::num(parallel_rate, 1),
              AsciiTable::num(parallel_rate / serial_rate, 2) + "x"});
    t.addRow({"context build [ms]", AsciiTable::num(cold_sec * 1e3, 1),
              AsciiTable::num(cached_sec * 1e3, 1),
              AsciiTable::num(cold_sec / cached_sec, 2) + "x"});
    t.addRow({"metrics jobs=1 vs jobs=N", "-", "-",
              deterministic ? "identical" : "MISMATCH"});
    t.print();

    JsonWriter json;
    json.beginObject();
    json.field("cells", static_cast<uint64_t>(cells.size()));
    json.field("requests", requests);
    json.field("seeds", seeds);
    json.field("jobs", jobs);
    json.field("serial_sec", serial_sec);
    json.field("parallel_sec", parallel_sec);
    json.field("serial_cells_per_sec", serial_rate);
    json.field("parallel_cells_per_sec", parallel_rate);
    json.field("parallel_speedup", parallel_rate / serial_rate);
    json.field("deterministic", deterministic);
    json.field("context_cold_sec", cold_sec);
    json.field("context_cached_sec", cached_sec);
    json.field("context_cache_speedup", cold_sec / cached_sec);
    json.endObject();
    if (!json.writeFile(out_path)) {
        std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
        return 1;
    }
    std::printf("Wrote %s\n", out_path.c_str());

    (void)cached_ctx;
    return deterministic ? 0 : 1;
}
