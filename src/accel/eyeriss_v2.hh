/**
 * @file
 * Analytical Eyeriss-V2 performance model for sparse CNNs.
 *
 * Eyeriss-V2 (Chen et al., JETCAS'19) is a row-stationary accelerator
 * with CSC-compressed weights and activations that skips ineffectual
 * MACs from both weight and activation zeros. This model reproduces
 * the quantities the scheduling study needs: per-layer latency as a
 * function of effective MACs (pattern-dependent), PE utilization,
 * and a roofline memory bound, following the validated third-party
 * performance model the paper cites. Per Sec. 6.1 the activation GLB
 * is raised from 1.5 KB to 2.5 KB to fit ResNet-50/VGG-16 tiles.
 */

#ifndef DYSTA_ACCEL_EYERISS_V2_HH
#define DYSTA_ACCEL_EYERISS_V2_HH

#include "accel/accelerator.hh"
#include "sparsity/activation_model.hh"
#include "sparsity/weight_sparsity.hh"
#include "util/rng.hh"

namespace dysta {

/** Eyeriss-V2 hardware configuration. */
struct EyerissV2Config
{
    /** Processing elements (16 clusters x 12 PEs). */
    int peCount = 192;
    /** Core clock (paper: 200 MHz on the ZU7EV prototype). */
    double clockHz = 200e6;
    /** Off-chip bandwidth in bytes/s. */
    double dramBandwidthBps = 1.6e9;
    /**
     * Average spatial-mapping efficiency of the row-stationary
     * dataflow across layer shapes (PEs idle when a layer does not
     * tile perfectly onto the hierarchical mesh).
     */
    double mappingEfficiency = 0.55;
    /**
     * Lower bound on per-MAC issue savings: CSC traversal and control
     * cap the achievable zero-skipping speed-up, so the effective MAC
     * fraction never drops below this floor.
     */
    double minEffectiveFraction = 0.08;
    /** Per-layer configuration/drain overhead in cycles. */
    double layerOverheadCycles = 4000;
    /** Storage bytes per (quantized) weight or activation. */
    double bytesPerElement = 1.0;
    /** CSC index overhead as a fraction of payload bytes. */
    double indexOverhead = 0.30;
};

/** Analytical latency model for one sparsified CNN on Eyeriss-V2. */
class EyerissV2Model
{
  public:
    explicit EyerissV2Model(EyerissV2Config config = {});

    const EyerissV2Config& config() const { return cfg; }

    /**
     * Execute one layer of a sparsified model for one input sample.
     * @param rng per-sample stream (channel-subset noise)
     */
    LayerRun runLayer(const SparsifiedModel& model, size_t layer,
                      const CnnActivationSample& sample, Rng& rng) const;

    /** Uninterrupted whole-model latency for one sample (seconds). */
    double isolatedLatency(const SparsifiedModel& model,
                           const CnnActivationSample& sample,
                           Rng& rng) const;

  private:
    EyerissV2Config cfg;
};

} // namespace dysta

#endif // DYSTA_ACCEL_EYERISS_V2_HH
