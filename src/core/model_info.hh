/**
 * @file
 * The model-information LUT populated by the static scheduler
 * (Sec. 4.1): per (model, sparsity pattern), the offline-profiled
 * average latency, per-layer average latency and per-layer average
 * monitored sparsity. Schedulers use it for every latency estimate;
 * only the Oracle bypasses it.
 */

#ifndef DYSTA_CORE_MODEL_INFO_HH
#define DYSTA_CORE_MODEL_INFO_HH

#include <string>
#include <unordered_map>
#include <vector>

#include "sparsity/pattern.hh"
#include "trace/trace.hh"

namespace dysta {

/** One LUT entry: offline averages for a model-pattern pair. */
struct ModelInfo
{
    std::string model;
    SparsityPattern pattern = SparsityPattern::Dense;

    /** Average isolated latency (seconds). */
    double avgLatency = 0.0;
    /** Average latency of each layer. */
    std::vector<double> avgLayerLatency;
    /** Average monitored sparsity of each layer. */
    std::vector<double> avgLayerSparsity;
    /** Network-average monitored sparsity. */
    double avgNetworkSparsity = 0.0;
    /**
     * Suffix sums: remainingFrom[l] is the average latency of layers
     * l..end; remainingFrom[layerCount] == 0.
     */
    std::vector<double> remainingFrom;

    /** Average latency still ahead when the next layer is `layer`. */
    double estRemaining(size_t layer) const;
};

/** Registry of ModelInfo entries keyed by (model, pattern). */
class ModelInfoLut
{
  public:
    /** Build and insert an entry from a Phase-1 trace set. */
    void addFromTrace(const TraceSet& traces);

    bool contains(const std::string& model,
                  SparsityPattern pattern) const;

    /** Fetch an entry; fatal() when missing (unprofiled model). */
    const ModelInfo& lookup(const std::string& model,
                            SparsityPattern pattern) const;

    size_t size() const { return entries.size(); }

  private:
    std::unordered_map<std::string, ModelInfo> entries;
};

} // namespace dysta

#endif // DYSTA_CORE_MODEL_INFO_HH
