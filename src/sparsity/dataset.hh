/**
 * @file
 * Dataset profiles: statistical stand-ins for the datasets the paper
 * profiles (ImageNet, ExDark, DarkFace, COCO for vision; SQuAD, GLUE
 * for language). Each profile parameterizes the synthetic activation /
 * attention sparsity generators so they reproduce the distributions
 * reported in Sec. 2.3 (Figs. 2-4, 9; Table 2).
 */

#ifndef DYSTA_SPARSITY_DATASET_HH
#define DYSTA_SPARSITY_DATASET_HH

#include <string>

namespace dysta {

/**
 * Parameters of the synthetic input population for one dataset
 * (mixture). Vision fields drive CnnActivationModel; language fields
 * drive AttentionModel.
 */
struct DatasetProfile
{
    std::string name;

    // --- vision ---
    /** Fraction of low-light / low-information samples (ExDark-like). */
    double darkFraction = 0.0;
    /** Extra network-wide activation sparsity of a dark sample. */
    double darkShift = 0.0;
    /** Std-dev of the per-sample network-wide sparsity shift. */
    double sampleSigma = 0.0;
    /** Std-dev of the per-layer independent sparsity noise. */
    double layerSigma = 0.0;

    // --- language ---
    int seqMean = 0;
    int seqStd = 0;
    int seqMin = 0;
    int seqMax = 0;
    /** Mean attention-mask density after threshold pruning. */
    double densityBase = 0.0;
    /** How strongly prompt complexity shifts the density. */
    double densityComplexityGain = 0.0;
    /** Per-layer residual density noise (keeps Fig. 9 corr < 1). */
    double densityLayerSigma = 0.0;
};

/** Curated ImageNet validation-style inputs. */
DatasetProfile imagenetProfile();

/**
 * The paper's out-of-distribution mixture: ImageNet plus ExDark and
 * DarkFace low-light images (drives Fig. 3 / Table 2 variance).
 */
DatasetProfile imagenetWithDarkProfile();

/** COCO detection inputs (SSD workloads). */
DatasetProfile cocoProfile();

/** SQuAD question answering prompts (BERT). */
DatasetProfile squadProfile();

/** GLUE sentence tasks (GPT-2 / BART). */
DatasetProfile glueProfile();

/** Default profile for a given benchmark model name. */
DatasetProfile defaultProfileFor(const std::string& model_name);

} // namespace dysta

#endif // DYSTA_SPARSITY_DATASET_HH
