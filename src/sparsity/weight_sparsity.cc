#include "sparsity/weight_sparsity.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace dysta {

bool
SparsifiedModel::prunable(const LayerDesc& layer)
{
    switch (layer.kind) {
      case LayerKind::Conv:
      case LayerKind::DepthwiseConv:
      case LayerKind::FullyConnected:
      case LayerKind::TokenFC:
        return true;
      default:
        return false;
    }
}

SparsifiedModel::SparsifiedModel(ModelDesc model, SparsityPattern pattern,
                                 double rate, uint64_t seed)
    : desc(std::move(model)), patt(pattern), targetRate(rate)
{
    fatalIf(rate < 0.0 || rate >= 1.0,
            "SparsifiedModel: rate must be in [0, 1)");

    Rng rng(seed ^ 0xD1B54A32D192ED03ULL);
    layers.reserve(desc.layers.size());

    for (const auto& layer : desc.layers) {
        LayerWeightInfo info;
        if (!prunable(layer) || patt == SparsityPattern::Dense ||
            targetRate == 0.0) {
            layers.push_back(info);
            continue;
        }

        switch (patt) {
          case SparsityPattern::RandomPointwise: {
            // Magnitude pruning hits layers unevenly; jitter the
            // per-layer rate while keeping the network average on
            // target. Random masks interact poorly with the PE array:
            // non-zeros land on arbitrary lanes, so utilization drops
            // as the mask becomes more irregular.
            double r = std::clamp(
                targetRate + rng.normal(0.0, 0.02), 0.0, 0.99);
            info.weightDensity = 1.0 - r;
            info.utilization = 0.82 - 0.18 * r;
            break;
          }
          case SparsityPattern::BlockNM: {
            // N:M keeps exactly N of every M weights: density is
            // exact and lanes stay balanced by construction.
            info.weightDensity = 1.0 - targetRate;
            info.utilization = 0.90;
            break;
          }
          case SparsityPattern::ChannelWise: {
            // Whole-channel removal leaves a dense regular kernel:
            // near-ideal utilization. Channel importance correlates
            // with activation firing rate, so the kept subset sees
            // denser-than-average activations; the bias grows as the
            // kept fraction shrinks (stronger selection).
            double kept_frac = std::clamp(1.0 - targetRate, 0.01, 1.0);
            info.weightDensity = kept_frac;
            info.utilization = 0.95;
            double selection = 1.0 - kept_frac; // == rate
            info.keptChannelBias =
                1.0 + 0.40 * selection * selection +
                rng.normal(0.0, 0.02);
            int kept_channels = std::max(
                1, static_cast<int>(std::lround(
                       kept_frac * layer.outChannels)));
            // Finite-subset averaging: fewer kept channels, noisier
            // per-sample effective density.
            info.channelNoiseSigma =
                0.25 / std::sqrt(static_cast<double>(kept_channels));
            break;
          }
          default:
            panic("SparsifiedModel: unexpected pattern");
        }
        layers.push_back(info);
    }
}

const LayerWeightInfo&
SparsifiedModel::layerInfo(size_t layer) const
{
    panicIf(layer >= layers.size(),
            "SparsifiedModel::layerInfo: index out of range");
    return layers[layer];
}

double
SparsifiedModel::validMacFraction(size_t layer, double act_density,
                                  Rng& rng) const
{
    const LayerWeightInfo& info = layerInfo(layer);
    double d = act_density;
    if (patt == SparsityPattern::ChannelWise) {
        d = act_density * info.keptChannelBias *
            (1.0 + rng.normal(0.0, info.channelNoiseSigma));
    }
    d = std::clamp(d, 0.0, 1.0);
    return std::clamp(info.weightDensity * d, 0.0, 1.0);
}

double
SparsifiedModel::avgWeightDensity() const
{
    double acc = 0.0;
    size_t n = 0;
    for (size_t i = 0; i < desc.layers.size(); ++i) {
        if (prunable(desc.layers[i])) {
            acc += layers[i].weightDensity;
            ++n;
        }
    }
    return n ? acc / static_cast<double>(n) : 1.0;
}

} // namespace dysta
