// Compatibility shim: the cluster event loop that used to live here
// is now the unified simulation core (src/sim/core.cc); ClusterEngine
// just forwards its configuration.

#include "serve/cluster_engine.hh"

#include "util/logging.hh"

namespace dysta {

ClusterConfig
homogeneousCluster(size_t n)
{
    ClusterConfig cfg;
    for (size_t i = 0; i < n; ++i) {
        cfg.nodes.push_back(
            referenceNodeProfile("node" + std::to_string(i)));
    }
    return cfg;
}

ClusterConfig
clusterFromProfiles(std::vector<NodeProfile> profiles)
{
    ClusterConfig cfg;
    cfg.nodes = std::move(profiles);
    return cfg;
}

ClusterEngine::ClusterEngine(ClusterConfig config)
    : cfg(std::move(config))
{
    fatalIf(cfg.nodes.empty(), "ClusterEngine: need at least one node");
    fatalIf(cfg.admission.enabled && cfg.lut == nullptr &&
                cfg.admissionEstimator == nullptr,
            "ClusterEngine: admission control requires a ModelInfoLut");
    fatalIf(cfg.admission.enabled && cfg.admission.margin <= 0.0,
            "ClusterEngine: admission margin must be positive");
}

namespace {

SimConfig
toSimConfig(const ClusterConfig& cfg)
{
    SimConfig sim;
    sim.nodes = cfg.nodes;
    sim.recordEvents = cfg.recordEvents;
    sim.admission = cfg.admission;
    sim.lut = cfg.lut;
    sim.admissionEstimator = cfg.admissionEstimator;
    sim.nodeEvents = cfg.nodeEvents;
    sim.onFailure = cfg.onFailure;
    sim.telemetry = cfg.telemetry;
    sim.calendar = cfg.calendar;
    sim.metricsKind = cfg.metricsKind;
    sim.chaos = cfg.chaos;
    sim.chaosSeed = cfg.chaosSeed;
    sim.retry = cfg.retry;
    sim.hedge = cfg.hedge;
    sim.brownout = cfg.brownout;
    sim.tierWeights = cfg.tierWeights;
    sim.batching = cfg.batching;
    return sim;
}

} // namespace

ClusterResult
ClusterEngine::run(std::vector<Request>& requests,
                   Dispatcher& dispatcher,
                   const PolicyFactory& make_policy) const
{
    SimConfig sim = toSimConfig(cfg);
    return runSimulation(sim, requests, dispatcher, make_policy);
}

ClusterResult
ClusterEngine::run(ArrivalSource& source, Dispatcher& dispatcher,
                   const PolicyFactory& make_policy) const
{
    SimConfig sim = toSimConfig(cfg);
    return runSimulation(sim, source, dispatcher, make_policy);
}

} // namespace dysta
