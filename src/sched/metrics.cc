#include "sched/metrics.hh"

#include <algorithm>
#include <limits>

#include "util/logging.hh"
#include "util/stats.hh"

namespace dysta {

double
Metrics::shedRate() const
{
    size_t offered = completed + shed;
    return offered > 0
               ? static_cast<double>(shed) / static_cast<double>(offered)
               : 0.0;
}

namespace {

/**
 * Shared aggregation loop. When `allow_shed` is set, shed requests
 * are skipped and counted; otherwise any unfinished request panics.
 */
Metrics
aggregate(const std::vector<Request>& requests, bool allow_shed)
{
    Metrics m;
    if (requests.empty())
        return m;

    double first_arrival = std::numeric_limits<double>::infinity();
    double last_finish = 0.0;
    size_t violations = 0;
    std::vector<double> turnarounds;
    std::vector<double> latencies;
    turnarounds.reserve(requests.size());
    latencies.reserve(requests.size());

    for (const auto& req : requests) {
        if (allow_shed && req.shed) {
            ++m.shed;
            continue;
        }
        panicIf(req.finishTime < 0.0,
                "computeMetrics: unfinished request in result set");
        // Shed requests never occupied the system, so the busy
        // interval spans served arrivals only.
        first_arrival = std::min(first_arrival, req.arrival);
        last_finish = std::max(last_finish, req.finishTime);
        double nt = req.normalizedTurnaround();
        turnarounds.push_back(nt);
        latencies.push_back(req.finishTime - req.arrival);
        m.antt += nt;
        m.stp += 1.0 / nt;
        if (req.violated())
            ++violations;
    }

    m.completed = turnarounds.size();
    if (m.completed == 0)
        return m; // everything was shed: only the count is meaningful

    double n = static_cast<double>(m.completed);
    m.antt /= n;
    m.violationRate = static_cast<double>(violations) / n;
    m.makespan = last_finish - first_arrival;
    m.throughput = m.makespan > 0.0 ? n / m.makespan : 0.0;
    m.p50Turnaround = percentile(turnarounds, 50.0);
    m.p95Turnaround = percentile(turnarounds, 95.0);
    m.p99Turnaround = percentile(turnarounds, 99.0);
    m.p50Latency = percentile(latencies, 50.0);
    m.p95Latency = percentile(latencies, 95.0);
    m.p99Latency = percentile(latencies, 99.0);
    return m;
}

} // namespace

Metrics
computeMetrics(const std::vector<Request>& requests)
{
    return aggregate(requests, false);
}

Metrics
computeMetricsCompleted(const std::vector<Request>& requests)
{
    return aggregate(requests, true);
}

} // namespace dysta
