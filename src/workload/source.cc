#include "workload/source.hh"

#include "util/logging.hh"

namespace dysta {

WorkloadArrivalSource::WorkloadArrivalSource(
    const WorkloadConfig& workload, const TraceRegistry& traces)
    : config(workload),
      registry(&traces),
      // Same seed derivation as generateWorkload: the two paths draw
      // the identical random sequence for one WorkloadConfig.
      rng(config.seed * 0x9E3779B97F4A7C15ULL + 0x123456789ULL),
      models(workloadModels(config.kind)),
      patterns(config.kind == WorkloadKind::MultiCNN
                   ? cnnPatterns()
                   : std::vector<SparsityPattern>{
                         SparsityPattern::Dense}),
      arrivals(makeArrivalProcess(config.arrival, config.arrivalRate))
{
    fatalIf(config.arrivalRate <= 0.0,
            "WorkloadArrivalSource: arrival rate must be positive");
    fatalIf(config.numRequests <= 0,
            "WorkloadArrivalSource: need at least one request");
}

size_t
WorkloadArrivalSource::total() const
{
    return static_cast<size_t>(config.numRequests);
}

Request*
WorkloadArrivalSource::next()
{
    if (produced >= config.numRequests)
        return nullptr;

    // One iteration of generateWorkload's loop, draw for draw.
    lastArrival = arrivals->nextArrival(lastArrival, rng);
    const std::string& model =
        models[rng.uniformInt(0, models.size() - 1)];
    SparsityPattern pattern =
        patterns[rng.uniformInt(0, patterns.size() - 1)];
    const TraceSet& set = registry->get(model, pattern);
    const SampleTrace& trace =
        set.sample(rng.uniformInt(0, set.size() - 1));

    Request* slot = pool.acquire();
    *slot = makeRequest(produced, model, pattern, trace, lastArrival,
                        config.sloMultiplier, set.avgTotalLatency());
    ++produced;
    return slot;
}

void
WorkloadArrivalSource::retire(Request* req, double now)
{
    (void)now;
    pool.release(req);
}

} // namespace dysta
