#include "hw/compute_unit.hh"

#include <algorithm>
#include <cmath>

namespace dysta {

ComputeUnit::ComputeUnit(HwPrecision precision)
    : prec(precision)
{
}

double
ComputeUnit::quantize(double v) const
{
    if (prec == HwPrecision::FP16)
        return static_cast<double>(Fp16(v).toFloat());
    return static_cast<double>(static_cast<float>(v));
}

double
ComputeUnit::emit(double v)
{
    ++cycles;
    ++ops;
    return quantize(v);
}

CuResult
ComputeUnit::sparsityCoeff(uint64_t num_zeros, uint64_t shape,
                           double recip_avg_density)
{
    // nnz = shape - num_zeros: integer subtract in the monitor.
    uint64_t nnz = shape - std::min(num_zeros, shape);
    ++cycles;

    // The layer-shape division folds into a multiplication by a
    // pre-computed reciprocal (Sec. 5.2.2). Zero counts exceed the
    // FP16 dynamic range, so this multiply runs in the monitor's
    // integer domain against a Q0.32 fixed-point reciprocal; only
    // the resulting fraction enters the floating datapath.
    double recip_q032 =
        std::floor(4294967296.0 / static_cast<double>(shape) + 0.5) /
        4294967296.0;
    double density =
        quantize(static_cast<double>(nnz) * recip_q032);
    ++cycles;
    ++ops;

    double gamma = emit(density * quantize(recip_avg_density));
    return {gamma, 3};
}

CuResult
ComputeUnit::score(double gamma, double avg_remaining,
                   double ddl_minus_now, double wait,
                   double recip_isolation, double recip_queue,
                   double eta, double slack_floor, double slack_cap,
                   double penalty_cap)
{
    double g = quantize(gamma);
    double rem = emit(g * quantize(avg_remaining));
    double slack = emit(quantize(ddl_minus_now) - rem);
    // Clamp comparators (single-cycle, no arithmetic resources).
    slack = std::clamp(slack, quantize(slack_floor),
                       quantize(slack_cap));
    ++cycles;
    double norm_wait = emit(quantize(wait) * quantize(recip_isolation));
    norm_wait = std::min(norm_wait, quantize(penalty_cap));
    ++cycles;
    double penalty = emit(norm_wait * quantize(recip_queue));
    double urgency = emit(slack + penalty);
    double weighted = emit(quantize(eta) * urgency);
    double score = emit(rem + weighted);
    return {score, 9};
}

void
ComputeUnit::resetCounters()
{
    cycles = 0;
    ops = 0;
}

} // namespace dysta
