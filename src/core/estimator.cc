#include "core/estimator.hh"

#include "util/logging.hh"

namespace dysta {

// --- LutEstimator -----------------------------------------------------------

const ModelInfo&
LutEstimator::info(const Request& req) const
{
    auto it = tracked.find(req.id);
    if (it != tracked.end())
        return *it->second;
    return lut->lookup(req.modelName, req.pattern);
}

void
LutEstimator::admit(const Request& req)
{
    tracked.try_emplace(req.id,
                        &lut->lookup(req.modelName, req.pattern));
}

void
LutEstimator::release(const Request& req)
{
    tracked.erase(req.id);
}

double
LutEstimator::remaining(const Request& req) const
{
    return info(req).estRemaining(req.nextLayer);
}

double
LutEstimator::isolated(const Request& req) const
{
    return info(req).avgLatency;
}

// --- DystaEstimator ---------------------------------------------------------

DystaEstimator::DystaEstimator(const ModelInfoLut& table,
                               PredictorConfig predictor_cfg,
                               bool refine)
    : lut(&table), pcfg(predictor_cfg), refineEnabled(refine)
{
}

void
DystaEstimator::reset()
{
    predictors.clear();
}

void
DystaEstimator::admit(const Request& req)
{
    const ModelInfo& info = lut->lookup(req.modelName, req.pattern);
    predictors.try_emplace(req.id, SparseLatencyPredictor(info, pcfg));
}

void
DystaEstimator::observe(const Request& req, double monitored_sparsity)
{
    // Alg. 3 line 3: refine only when the monitor captured the layer.
    if (!refineEnabled || monitored_sparsity < 0.0)
        return;
    auto it = predictors.find(req.id);
    if (it != predictors.end() && req.nextLayer > 0)
        it->second.observe(req.nextLayer - 1, monitored_sparsity);
}

void
DystaEstimator::release(const Request& req)
{
    predictors.erase(req.id);
}

double
DystaEstimator::remaining(const Request& req) const
{
    auto it = predictors.find(req.id);
    if (it != predictors.end())
        return it->second.predictRemaining(req.nextLayer);
    return lut->lookup(req.modelName, req.pattern)
        .estRemaining(req.nextLayer);
}

double
DystaEstimator::isolated(const Request& req) const
{
    // SLOs are published against the profiled average, so the
    // isolated reference stays the LUT value even for refined
    // requests.
    return lut->lookup(req.modelName, req.pattern).avgLatency;
}

double
DystaEstimator::gamma(int request_id) const
{
    auto it = predictors.find(request_id);
    return it != predictors.end() ? it->second.gamma() : 1.0;
}

ScaledEstimator::ScaledEstimator(const LatencyEstimator& base,
                                 double speed_factor)
    : inner(&base), speed(speed_factor)
{
    fatalIf(speed_factor <= 0.0,
            "ScaledEstimator: speed factor must be positive");
}

std::string
ScaledEstimator::name() const
{
    return inner->name() + "@x" + std::to_string(speed);
}

} // namespace dysta
