// Fixture: clean counterpart — every scalar knob carries a default
// member initializer; non-scalar members value-initialize themselves.
#include <string>
#include <vector>

struct RetryConfig {
    int maxAttempts = 3;
    double backoffBase = 2.0;
    bool hedge = false;
    std::string policy;
    std::vector<double> tiers;
};
