#include "sched/prema.hh"

#include <algorithm>

#include "util/logging.hh"

namespace dysta {

void
PremaScheduler::reset()
{
    state.clear();
}

void
PremaScheduler::onArrival(const Request& req, double now)
{
    TaskState ts;
    ts.token = 0.0;
    ts.lastUpdate = now;
    // The benchmark has no user-assigned priority classes; all
    // requests share the base priority, as in the paper's setup.
    ts.priority = 1.0;
    state[req.id] = ts;
}

void
PremaScheduler::onComplete(const Request& req, double now)
{
    (void)now;
    state.erase(req.id);
}

size_t
PremaScheduler::selectNext(const std::vector<const Request*>& ready,
                           double now)
{
    // Token = priority x normalized waiting time (estimated
    // slowdown). Waiting excludes execution time, so a running task's
    // token freezes while it holds the accelerator.
    double max_token = 0.0;
    for (const Request* req : ready) {
        auto it = state.find(req->id);
        panicIf(it == state.end(), "PREMA: unknown request");
        TaskState& ts = it->second;
        double isol = std::max(estIsolated(*lut, *req), 1e-12);
        double waited =
            std::max(0.0, now - req->arrival - req->executedTime);
        ts.token = ts.priority * waited / isol;
        max_token = std::max(max_token, ts.token);
    }

    // Candidates: tokens at (>=) the threshold; SJF among them. The
    // degrading-threshold mechanism of the PREMA paper admits every
    // task whose tokens reached a fraction of the current maximum,
    // so the pool is wider than the single argmax and the policy
    // stays SJF-like while still aging long waiters in.
    const double threshold = 0.5 * max_token;
    size_t best = ready.size();
    double best_remaining = 0.0;
    for (size_t i = 0; i < ready.size(); ++i) {
        if (state[ready[i]->id].token < threshold)
            continue;
        double remaining = estRemaining(*lut, *ready[i]);
        if (best == ready.size() || remaining < best_remaining) {
            best = i;
            best_remaining = remaining;
        }
    }
    panicIf(best == ready.size(), "PREMA: empty candidate set");
    return best;
}

} // namespace dysta
