/**
 * @file
 * Table 5 reproduction: end-to-end ANTT and SLO violation rate of
 * FCFS, SJF, SDRM3, PREMA, Planaria and Dysta on the multi-AttNN
 * (30 req/s) and multi-CNN (3 req/s) workloads, M_slo = 10x,
 * 1000 requests, averaged over five seeds. Oracle and the FP16
 * hardware implementation of Dysta are appended for reference.
 *
 * Paper reference:
 *   multi-AttNN: FCFS 18.9/55.1, SJF 5.0/15.2, SDRM3 18.9/63.3,
 *                PREMA 5.4/15.3, Planaria 16.0/6.8, Dysta 4.7/5.1
 *   multi-CNN:   FCFS 11.4/23.1, SJF 2.6/3.4, SDRM3 9.3/33.7,
 *                PREMA 3.0/3.2, Planaria 4.2/2.1, Dysta 2.5/2.0
 *
 * This main is the built-in "tab05" scenario plus flag overrides:
 * `sdysta scenarios/tab05.scn` runs the identical grid and reports
 * identical metrics (asserted by CI).
 */

#include "api/report.hh"
#include "api/scenario.hh"
#include "util/args.hh"

using namespace dysta;

int
main(int argc, char** argv)
{
    ArgParser args("tab05_end_to_end",
                   "Table 5 reproduction: end-to-end ANTT and SLO "
                   "violation rates (the built-in 'tab05' scenario).");
    args.addInt("--requests", 1000, "requests per workload");
    args.addInt("--seeds", 5, "seed replicas per grid point");
    args.addInt("--samples", 300, "Phase-1 samples per model");
    args.addJobs();
    args.addTraceCache();
    args.addString("--out", "BENCH_tab05.json", "report path");
    args.parse(argc, argv);

    ScenarioSpec spec = builtinScenario("tab05");
    spec.requests = args.getInt("--requests");
    spec.seeds = args.getInt("--seeds");
    spec.samples = args.getInt("--samples");

    ScenarioRunOptions options;
    options.jobs = args.getInt("--jobs");
    options.traceCache = args.getString("--trace-cache");
    ScenarioResult result = runScenario(spec, options);
    printScenarioTable(result);

    Reporter report("tab05_end_to_end");
    report.meta("jobs", result.jobs);
    report.add(result);
    report.writeJson(args.getString("--out"));
    return 0;
}
