/**
 * @file
 * Parallel sweep engine for the experiment grids.
 *
 * Every figure/table reproduction is a grid of independent simulation
 * cells — (workload config x scheduler/dispatcher x seed). A
 * SweepRunner executes a vector of SweepCells across N worker
 * threads (`--jobs`), writing each cell's result into its pre-sized
 * slot, so the output is identical to a serial run regardless of
 * completion order. Cells share only the const BenchContext (trace
 * pools, LUT, model descriptors); all mutable state — the workload
 * RNG, the requests, the policy and its estimator, the engine — is
 * constructed per cell.
 */

#ifndef DYSTA_EXP_SWEEP_HH
#define DYSTA_EXP_SWEEP_HH

#include <functional>
#include <string>
#include <vector>

#include "exp/experiments.hh"

namespace dysta {

/** One grid point of an experiment sweep. */
struct SweepCell
{
    /** Workload to generate (its seed identifies the replica). */
    WorkloadConfig workload;
    /** Node policy name (makeSchedulerByName). */
    std::string scheduler = "Dysta";
    /** Non-preemptible block granularity (EngineConfig). */
    size_t layerBlockSize = 1;
    /**
     * Optional policy override for cells that need a hand-built
     * scheduler (hyperparameter ablations). Must be thread-safe to
     * invoke concurrently (pure construction from const inputs).
     */
    std::function<std::unique_ptr<Scheduler>(const BenchContext&)>
        makePolicy;
    /** Serve on a simulated cluster instead of one accelerator. */
    bool clusterMode = false;
    /** Cluster topology/policies (used when clusterMode). */
    ClusterRunConfig cluster;
    /**
     * Estimator accuracy probe specs (PolicyRegistry, e.g. "lut",
     * "dysta"). Non-empty builds a private counters-only Telemetry
     * for the cell and surfaces per-probe prediction RMSE/bias in
     * the cell's Metrics::estimators. Ignored when `telemetry` is
     * set.
     */
    std::vector<std::string> probes;
    /**
     * Explicit caller-owned telemetry sink (full event recording for
     * trace exports). The caller registers any probes itself and
     * must not share one sink between concurrently-running cells.
     */
    Telemetry* telemetry = nullptr;
    /**
     * Pull requests lazily from a WorkloadArrivalSource instead of
     * materializing the workload vector (bit-identical schedule,
     * memory bounded by the in-flight set). Applies to both single
     * and cluster cells.
     */
    bool streaming = false;
    /** Calendar implementation (see SimConfig::calendar). */
    CalendarKind calendar = CalendarKind::Heap;
    /** Streaming-mode metrics accumulation (see SimConfig). */
    MetricsKind metricsKind = MetricsKind::Exact;
};

/** One cell's outcome. */
struct SweepCellResult
{
    Metrics metrics;
    /** Scheduler invocations across the run (all nodes). */
    size_t decisions = 0;
    /** Preemptions across the run (all nodes). */
    size_t preemptions = 0;
    /** Calendar events processed (events/sec denominators). */
    size_t eventsProcessed = 0;
};

/**
 * Run one cell, self-contained: generates the workload, constructs
 * the policy (and dispatcher for cluster cells) and simulates.
 * Thread-safe for concurrent calls sharing one const BenchContext.
 */
SweepCellResult runSweepCell(const BenchContext& ctx,
                             const SweepCell& cell);

/** `num_seeds` copies of `cell` with seeds seed, seed+1, ... */
std::vector<SweepCell> seedReplicas(const SweepCell& cell,
                                    int num_seeds);

/** Field-wise mean of run metrics (the paper's seed averaging). */
Metrics averageMetrics(const std::vector<Metrics>& runs);

/**
 * Average contiguous groups of `group_size` cell results — the
 * companion of building a grid via seedReplicas.
 */
std::vector<Metrics>
averageGroups(const std::vector<SweepCellResult>& results,
              int group_size);

/** Thread-pooled executor for a vector of sweep cells. */
class SweepRunner
{
  public:
    /**
     * @param jobs worker threads; <= 0 selects the hardware
     *             concurrency, 1 runs serially on the caller.
     */
    explicit SweepRunner(const BenchContext& ctx, int jobs = 0);

    int jobs() const { return numJobs; }

    /**
     * Execute all cells; results[i] is cells[i]'s outcome, in input
     * order, bit-identical for any jobs count. When `cell_seconds`
     * is non-null it is resized to the cell count and filled with
     * each cell's wall-clock duration (timing data only — never part
     * of the simulated results).
     */
    std::vector<SweepCellResult>
    run(const std::vector<SweepCell>& cells,
        std::vector<double>* cell_seconds = nullptr) const;

  private:
    const BenchContext* ctx;
    int numJobs;
};

} // namespace dysta

#endif // DYSTA_EXP_SWEEP_HH
