/**
 * @file
 * Ablation bench: sweep Dysta's hyperparameters (eta, beta, predictor
 * strategy) on both workloads. This is the design-choice ablation
 * DESIGN.md calls out; it also documents how the defaults were
 * selected. SJF and Planaria rows anchor the trade-off space.
 *
 * Hand-configured Dysta cells use SweepCell::makePolicy; the whole
 * (workload x config x seed) grid runs on the parallel SweepRunner
 * and the output is identical for any --jobs.
 *
 * Usage: ablation_hyperparams [--requests N] [--seeds K] [--jobs N]
 *                             [--trace-cache DIR]
 */

#include <cstdio>

#include "exp/sweep.hh"
#include "util/args.hh"
#include "util/table.hh"

using namespace dysta;

int
main(int argc, char** argv)
{
    ArgParser args("ablation_hyperparams",
                   "Dysta hyperparameter ablation: eta, beta and "
                   "predictor-strategy sweeps on both workloads.");
    args.addInt("--requests", 800, "requests per workload");
    args.addInt("--seeds", 3, "seed replicas");
    args.addJobs();
    args.addTraceCache();
    args.parse(argc, argv);
    int requests = args.getInt("--requests");
    int seeds = args.getInt("--seeds");

    auto ctx = makeBenchContext(BenchSetup{},
                                args.getString("--trace-cache"));
    SweepRunner runner(*ctx, args.getInt("--jobs"));

    const double etas[] = {0.0, 0.02, 0.05, 0.1, 0.3, 1.0};
    const double betas[] = {0.0, 0.25, 0.5, 0.75, 1.0};
    const WorkloadKind kinds[] = {WorkloadKind::MultiAttNN,
                                  WorkloadKind::MultiCNN};

    auto dystaCell = [](const WorkloadConfig& wl, DystaConfig cfg) {
        SweepCell cell;
        cell.workload = wl;
        cell.makePolicy = [cfg](const BenchContext& c) {
            return std::make_unique<DystaScheduler>(c.lut, cfg);
        };
        return cell;
    };

    // Grid order: per workload, SJF/Planaria anchors, then the eta
    // sweep, then the beta sweep — mirrored by the printing loop.
    std::vector<SweepCell> cells;
    for (WorkloadKind kind : kinds) {
        WorkloadConfig wl;
        wl.kind = kind;
        wl.arrivalRate = kind == WorkloadKind::MultiAttNN ? 30.0 : 3.0;
        wl.numRequests = requests;
        wl.seed = 42;

        for (const char* anchor : {"SJF", "Planaria"}) {
            SweepCell cell;
            cell.workload = wl;
            cell.scheduler = anchor;
            for (const SweepCell& c : seedReplicas(cell, seeds))
                cells.push_back(c);
        }
        for (double eta : etas) {
            DystaConfig cfg;
            cfg.eta = eta;
            for (const SweepCell& c :
                 seedReplicas(dystaCell(wl, cfg), seeds))
                cells.push_back(c);
        }
        for (double beta : betas) {
            DystaConfig cfg = dystaWithoutSparseConfig();
            cfg.beta = beta;
            for (const SweepCell& c :
                 seedReplicas(dystaCell(wl, cfg), seeds))
                cells.push_back(c);
        }
    }
    std::vector<Metrics> avg =
        averageGroups(runner.run(cells), seeds);

    size_t g = 0;
    for (WorkloadKind kind : kinds) {
        AsciiTable table("Dysta eta sweep, " + toString(kind));
        table.setHeader({"config", "ANTT", "violation [%]"});

        for (const char* anchor : {"SJF", "Planaria"}) {
            const Metrics& m = avg[g++];
            table.addRow({anchor, AsciiTable::num(m.antt, 3),
                          AsciiTable::num(m.violationRate * 100, 2)});
        }
        for (double eta : etas) {
            const Metrics& m = avg[g++];
            table.addRow({"Dysta eta=" + AsciiTable::num(eta, 2),
                          AsciiTable::num(m.antt, 3),
                          AsciiTable::num(m.violationRate * 100, 2)});
        }
        table.print();

        AsciiTable btable("Dysta-w/o-sparse beta sweep (static level), " +
                          toString(kind));
        btable.setHeader({"config", "ANTT", "violation [%]"});
        for (double beta : betas) {
            const Metrics& m = avg[g++];
            btable.addRow({"beta=" + AsciiTable::num(beta, 2),
                           AsciiTable::num(m.antt, 3),
                           AsciiTable::num(m.violationRate * 100, 2)});
        }
        btable.print();
    }
    return 0;
}
