#include "sched/sjf.hh"

#include "util/logging.hh"

namespace dysta {

void
SjfScheduler::reset()
{
    Scheduler::reset();
    queue.clear();
    nextSeq = 0;
}

void
SjfScheduler::onArrival(const Request& req, double now)
{
    Scheduler::onArrival(req, now);
    queue.push(&req, {est->remaining(req), nextSeq++});
}

void
SjfScheduler::onLayerComplete(const Request& req, double now,
                              double monitored_sparsity)
{
    Scheduler::onLayerComplete(req, now, monitored_sparsity);
    // Lazy re-key: only this request's estimate can have changed
    // (progress, and possibly a sparsity refinement).
    if (queue.contains(req.id))
        queue.updatePrimary(req.id, est->remaining(req));
}

void
SjfScheduler::onComplete(const Request& req, double now)
{
    Scheduler::onComplete(req, now);
    if (queue.contains(req.id))
        queue.erase(req.id);
}

size_t
SjfScheduler::selectNext(const std::vector<const Request*>& ready,
                         double now)
{
    (void)now;
    size_t best = 0;
    double best_remaining = est->remaining(*ready[0]);
    for (size_t i = 1; i < ready.size(); ++i) {
        double remaining = est->remaining(*ready[i]);
        if (remaining < best_remaining) {
            best_remaining = remaining;
            best = i;
        }
    }
    return best;
}

Request*
SjfScheduler::pickNext(const std::vector<Request*>& ready, double now)
{
    (void)now;
    panicIf(queue.size() != ready.size(),
            "SjfScheduler: ready queue out of sync with engine "
            "(missing onArrival/onComplete callbacks?)");
    return const_cast<Request*>(queue.top());
}

} // namespace dysta
