// Fixture: clean counterpart — lookups into an unordered map are fine
// (only iteration order is hash dependent), and ordered containers may
// be drained directly.
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

std::vector<std::string> drain(const std::vector<std::string>& keys)
{
    std::unordered_map<std::string, int> backlog;
    std::map<std::string, int> ordered;
    std::vector<std::string> out;
    for (const std::string& key : keys)
        if (backlog.count(key) != 0)
            ordered[key] = backlog.at(key);
    for (const auto& [key, value] : ordered)
        out.push_back(key + ":" + std::to_string(value));
    return out;
}
