#include "sched/fcfs.hh"

namespace dysta {

size_t
FcfsScheduler::selectNext(const std::vector<const Request*>& ready,
                          double now)
{
    (void)now;
    size_t best = 0;
    for (size_t i = 1; i < ready.size(); ++i) {
        if (ready[i]->arrival < ready[best]->arrival ||
            (ready[i]->arrival == ready[best]->arrival &&
             ready[i]->id < ready[best]->id)) {
            best = i;
        }
    }
    return best;
}

} // namespace dysta
