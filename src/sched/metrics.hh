/**
 * @file
 * Multi-DNN performance metrics (Sec. 6.1): average normalized
 * turnaround time (ANTT), latency-SLO violation rate, and system
 * throughput.
 */

#ifndef DYSTA_SCHED_METRICS_HH
#define DYSTA_SCHED_METRICS_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "sched/request.hh"
#include "util/stats.hh"

namespace dysta {

/**
 * Prediction accuracy of one latency estimator over a run, measured
 * by a telemetry probe (src/obs/telemetry.hh): residuals are
 * estimated minus ground-truth latency in reference-hardware
 * seconds. `bias`/`rmse` cover remaining-latency queries after each
 * observed layer; the `isolated*` fields cover the one-shot
 * end-to-end estimate at dispatch.
 */
struct EstimatorAccuracy
{
    /** Estimator spec the probe was built from (e.g. "dysta"). */
    std::string estimator;
    /** Remaining-latency residual sample count. */
    double samples = 0.0;
    /** Mean residual (positive = over-estimates). */
    double bias = 0.0;
    /** Root-mean-square residual. */
    double rmse = 0.0;
    /** Isolated-latency residual sample count (one per dispatch). */
    double isolatedSamples = 0.0;
    double isolatedBias = 0.0;
    double isolatedRmse = 0.0;
};

/** Per-priority-tier outcome counts of a chaos-engine run. */
struct TierStats
{
    double completed = 0.0;
    /** Completions past their deadline. */
    double violations = 0.0;
    double shed = 0.0;
    /** SLO-attained completions per second of makespan. */
    double goodput = 0.0;
};

/**
 * Resilience metrics of the chaos engine (src/chaos/). `active` is
 * set only when a resilience mechanism (fault injection, retries,
 * hedging, brown-out, tiers) was configured: inactive stats are
 * never reported, so chaos-off reports stay bit-identical to builds
 * without the subsystem. Counts are doubles so seed replicas average
 * the same way as every other metric.
 */
struct ResilienceStats
{
    bool active = false;
    /** 1 - (node-down time / (nodes * makespan)). */
    double availability = 1.0;
    /** Mean observed repair time over closed down-spells, seconds. */
    double mttr = 0.0;
    /** Node-down transitions observed (fault-domain fan-out counted
     * per node). */
    double failures = 0.0;
    /** Per-attempt deadline timeouts fired. */
    double timeouts = 0.0;
    /** Re-dispatches after a timeout. */
    double retries = 0.0;
    /** Dispatch attempts per offered request (>= 1). */
    double retryAmplification = 1.0;
    /** Hedged duplicates issued. */
    double hedges = 0.0;
    /** Hedges whose clone finished first. */
    double hedgeWins = 0.0;
    /** hedgeWins / hedges (0 when no hedges). */
    double hedgeWinRate = 0.0;
    /** Admission sheds attributed to brown-out margin escalation. */
    double brownoutSheds = 0.0;
    /** Per-tier outcomes; empty unless tiers were configured. */
    std::vector<TierStats> tiers;
};

/**
 * Dynamic-batching metrics (src/batch/). `active` is set only when
 * batch formation was enabled, so batching-off reports stay
 * bit-identical to builds without the subsystem. Counts are doubles
 * so seed replicas average the same way as every other metric.
 */
struct BatchStats
{
    bool active = false;
    /** Batches formed (anchor picked, batch started fresh). */
    double formed = 0.0;
    /** Continuous-batching joins at layer boundaries. */
    double joins = 0.0;
    /** Batch layer steps executed. */
    double steps = 0.0;
    /** Mean members per batch step (memberSteps / steps). */
    double meanOccupancy = 0.0;
    /** Mean queue wait before a request's first batch step, s. */
    double meanFillWaitSec = 0.0;
    /**
     * Total time members spent waiting on a slower co-member: sum
     * over steps of (step base latency - own layer latency).
     */
    double stragglerTaxSec = 0.0;
};

/** Aggregate results of one scheduling run. */
struct Metrics
{
    /** ANTT: mean over requests of T_multi / T_isol (>= 1). */
    double antt = 0.0;
    /** Fraction of completed requests past their deadline, in [0,1]. */
    double violationRate = 0.0;
    /**
     * Fraction of *offered* requests that missed their SLO:
     * (violations + shed) / (completed + shed). A shed request is an
     * SLO miss from the client's point of view, so unlike
     * `violationRate` this rate cannot be gamed by shedding
     * aggressively — with any sheds, sloMissRate >= violationRate.
     */
    double sloMissRate = 0.0;
    /** Completed inferences per second over the busy interval. */
    double throughput = 0.0;
    /**
     * SLO-attained throughput: completions that met their deadline
     * per second of makespan. The headline serving metric — raw
     * throughput counts deadline-missing work, goodput does not.
     */
    double goodput = 0.0;
    /** Eyerman-Eeckhout STP: sum of per-request speedups. */
    double stp = 0.0;
    /** Median normalized turnaround (ANT percentile). */
    double p50Turnaround = 0.0;
    /** 95th-percentile normalized turnaround. */
    double p95Turnaround = 0.0;
    /** 99th-percentile normalized turnaround. */
    double p99Turnaround = 0.0;
    /** Median end-to-end latency (finish - arrival), seconds. */
    double p50Latency = 0.0;
    /** 95th-percentile end-to-end latency, seconds. */
    double p95Latency = 0.0;
    /** 99th-percentile end-to-end latency, seconds. */
    double p99Latency = 0.0;
    /** Number of completed requests. */
    size_t completed = 0;
    /** Requests rejected by admission control (cluster runs). */
    size_t shed = 0;
    /** Last finish time minus first arrival. */
    double makespan = 0.0;
    /**
     * Per-estimator prediction accuracy from telemetry probes;
     * empty when the run carried no probes.
     */
    std::vector<EstimatorAccuracy> estimators;
    /** Chaos-engine resilience metrics (inactive unless configured). */
    ResilienceStats resilience;
    /** Dynamic-batching metrics (inactive unless enabled). */
    BatchStats batching;

    /** Shed fraction of all offered requests, in [0, 1]. */
    double shedRate() const;
};

/** How a streaming run accumulates its metrics. */
enum class MetricsKind : uint8_t
{
    /**
     * Keep one small record per retired request and finalize by
     * replaying the exact computeMetrics aggregation (same
     * summation order, same sorted percentiles) — bit-identical to
     * the materialized path, O(completed) memory. The default, and
     * the right choice below ~10^6 requests.
     */
    Exact = 0,
    /**
     * O(1)-memory sketch: Welford accumulators for the means, P²
     * estimators for the percentiles, exact counters for
     * violations/sheds/makespan/throughput. Percentiles carry P²
     * approximation error; every other field is exact up to
     * floating-point summation order. Required for megascale runs.
     */
    Sketch = 1,
};

std::string toString(MetricsKind kind);

/** Parse "exact" / "sketch". fatal() on anything else. */
MetricsKind metricsKindFromName(const std::string& name);

/**
 * Accumulator the streaming simulation core retires requests into,
 * one at a time, so no completed-request vector has to stay alive.
 * Exact mode reproduces computeMetricsCompleted() bit for bit (the
 * per-request records are replayed in request-id order, matching
 * the materialized vector's iteration order); Sketch mode holds
 * only O(1) state. `finalize()` may be called once, after the last
 * retirement.
 */
class StreamingMetrics
{
  public:
    explicit StreamingMetrics(MetricsKind kind = MetricsKind::Exact);

    MetricsKind kind() const { return mode; }

    /** Retire one completed request (finishTime set). */
    void recordCompleted(const Request& req);

    /** Retire one shed request. */
    void recordShed(const Request& req);

    /** Requests retired so far (completed + shed). */
    size_t retired() const;

    /** Aggregate everything retired so far into a Metrics. */
    Metrics finalize() const;

  private:
    /** Exact-mode retained state: everything aggregate() reads. */
    struct CompletedRecord
    {
        int id = -1;
        double arrival = 0.0;
        double finish = 0.0;
        double normalizedTurnaround = 0.0;
        bool violated = false;
    };

    MetricsKind mode;
    size_t shedCount = 0;

    // --- exact mode ---------------------------------------------------
    std::vector<CompletedRecord> records;

    // --- sketch mode --------------------------------------------------
    size_t completedCount = 0;
    size_t violationCount = 0;
    double firstArrival = 0.0;
    double lastFinish = 0.0;
    /** Normalized-turnaround moments (mean feeds ANTT). */
    OnlineStats turnaroundStats;
    /** Per-request speedup (1/nt) moments (sum feeds STP). */
    OnlineStats speedupStats;
    P2Quantile p50Turn, p95Turn, p99Turn;
    P2Quantile p50Lat, p95Lat, p99Lat;

    Metrics finalizeExact() const;
    Metrics finalizeSketch() const;
};

/**
 * Compute metrics from a fully-executed request set.
 * panic() on any unfinished request; empty input yields zero metrics.
 */
Metrics computeMetrics(const std::vector<Request>& requests);

/**
 * Metrics over the completed subset of a cluster run: shed requests
 * (finishTime < 0 with the shed flag) are excluded from turnaround
 * and violation statistics and counted in Metrics::shed instead.
 * panic() on unfinished requests that were not shed.
 */
Metrics computeMetricsCompleted(const std::vector<Request>& requests);

} // namespace dysta

#endif // DYSTA_SCHED_METRICS_HH
