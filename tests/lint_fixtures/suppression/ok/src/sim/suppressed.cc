// Fixture: violations carrying well-formed detlint-allow comments —
// same-line, line-above, and multi-line comment block forms. detlint
// must exit 0 here.
#include <string>
#include <unordered_map>
#include <vector>

std::vector<std::string> sortedKeys()
{
    std::unordered_map<std::string, int> backlog;
    std::vector<std::string> out;
    // detlint-allow(unordered-iter): collects every key and sorts below
    for (const auto& [key, value] : backlog)
        out.push_back(key);
    return out;
}

int drainCount()
{
    std::unordered_map<std::string, int> backlog;
    int n = 0;
    // A multi-line justification: the allow tag sits in the comment
    // block directly above the loop, which is the third accepted form.
    // detlint-allow(unordered-iter): order-invariant reduction, the
    // sum is the same for any walk order
    for (const auto& [key, value] : backlog)
        n += value;
    return n;
}
