#include "util/logging.hh"

#include <cstdio>

namespace dysta {

std::string
joinComma(const std::vector<std::string>& items)
{
    if (items.empty())
        return "(none)";
    std::string out;
    for (const std::string& item : items)
        out += (out.empty() ? "" : ", ") + item;
    return out;
}

void
panic(const std::string& msg)
{
    std::fprintf(stderr, "panic: %s\n", msg.c_str());
    std::abort();
}

namespace {
// Not atomic on purpose: flipped once by a fuzz/test driver before
// any worker threads exist.
bool g_fatalThrows = false;
} // namespace

bool
setFatalThrows(bool enable)
{
    bool prev = g_fatalThrows;
    g_fatalThrows = enable;
    return prev;
}

void
fatal(const std::string& msg)
{
    if (g_fatalThrows)
        throw FatalError(msg);
    std::fprintf(stderr, "fatal: %s\n", msg.c_str());
    std::exit(1);
}

void
warn(const std::string& msg)
{
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
inform(const std::string& msg)
{
    // detlint-allow(stdout-print): inform() IS the sanctioned stdout
    // channel — callers route user-facing notes through here
    std::fprintf(stdout, "info: %s\n", msg.c_str());
}

} // namespace dysta
