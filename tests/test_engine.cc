/**
 * @file
 * Unit tests for the event-driven scheduling engine and the metrics:
 * completion semantics, idle handling, layer-granular preemption,
 * decision overhead, event recording, and metric formulas.
 */

#include <gtest/gtest.h>

#include <map>

#include "sched/engine.hh"
#include "sched/fcfs.hh"
#include "sched/sjf.hh"
#include "test_helpers.hh"

using namespace dysta;
using dysta::test::World;

namespace {

World
twoModelWorld()
{
    World w;
    w.addModel("long", {1.0, 1.0, 1.0, 1.0}); // 4 s isolated
    w.addModel("short", {0.1, 0.1});          // 0.2 s isolated
    return w;
}

} // namespace

TEST(Engine, SingleRequestFinishesAtArrivalPlusIsolated)
{
    World w = twoModelWorld();
    std::vector<Request> reqs = {w.request(0, "long", 0.5)};
    FcfsScheduler fcfs;
    SchedulerEngine engine;
    EngineResult r = engine.run(reqs, fcfs);

    EXPECT_DOUBLE_EQ(reqs[0].finishTime, 4.5);
    EXPECT_TRUE(reqs[0].done());
    EXPECT_EQ(r.metrics.completed, 1u);
    EXPECT_DOUBLE_EQ(r.metrics.antt, 1.0);
    EXPECT_DOUBLE_EQ(r.metrics.violationRate, 0.0);
}

TEST(Engine, IdleGapJumpsToNextArrival)
{
    World w = twoModelWorld();
    std::vector<Request> reqs = {w.request(0, "short", 0.0),
                                 w.request(1, "short", 10.0)};
    FcfsScheduler fcfs;
    SchedulerEngine engine;
    engine.run(reqs, fcfs);
    EXPECT_DOUBLE_EQ(reqs[0].finishTime, 0.2);
    EXPECT_DOUBLE_EQ(reqs[1].finishTime, 10.2);
}

TEST(Engine, FcfsDoesNotPreempt)
{
    World w = twoModelWorld();
    // Short request arrives while the long one runs.
    std::vector<Request> reqs = {w.request(0, "long", 0.0),
                                 w.request(1, "short", 0.5)};
    FcfsScheduler fcfs;
    SchedulerEngine engine;
    EngineResult r = engine.run(reqs, fcfs);
    EXPECT_DOUBLE_EQ(reqs[0].finishTime, 4.0);
    EXPECT_DOUBLE_EQ(reqs[1].finishTime, 4.2);
    EXPECT_EQ(r.preemptions, 0u);
}

TEST(Engine, SjfPreemptsAtLayerBoundary)
{
    World w = twoModelWorld();
    std::vector<Request> reqs = {w.request(0, "long", 0.0),
                                 w.request(1, "short", 0.5)};
    SjfScheduler sjf(w.lut);
    SchedulerEngine engine;
    EngineResult r = engine.run(reqs, sjf);
    // The short job preempts after the long job's first layer ends
    // at t=1, runs 1.0..1.2; the long job resumes and ends at 4.2.
    EXPECT_DOUBLE_EQ(reqs[1].finishTime, 1.2);
    EXPECT_DOUBLE_EQ(reqs[0].finishTime, 4.2);
    EXPECT_GE(r.preemptions, 1u);
}

TEST(Engine, ExecutionNeverPreemptsWithinLayer)
{
    World w;
    w.addModel("chunky", {2.0});
    w.addModel("tiny", {0.01});
    // The tiny job arrives mid-layer; it must wait for the boundary.
    std::vector<Request> reqs = {w.request(0, "chunky", 0.0),
                                 w.request(1, "tiny", 0.5)};
    SjfScheduler sjf(w.lut);
    SchedulerEngine engine;
    engine.run(reqs, sjf);
    EXPECT_DOUBLE_EQ(reqs[0].finishTime, 2.0);
    EXPECT_DOUBLE_EQ(reqs[1].finishTime, 2.01);
}

TEST(Engine, DecisionOverheadAddsTime)
{
    World w = twoModelWorld();
    std::vector<Request> reqs = {w.request(0, "short", 0.0)};
    FcfsScheduler fcfs;
    EngineConfig cfg;
    cfg.decisionOverheadSec = 0.05;
    SchedulerEngine engine(cfg);
    engine.run(reqs, fcfs);
    // Two layers, one decision before each.
    EXPECT_DOUBLE_EQ(reqs[0].finishTime, 0.2 + 2 * 0.05);
}

TEST(Engine, RecordsScheduleEvents)
{
    World w = twoModelWorld();
    std::vector<Request> reqs = {w.request(0, "short", 0.0)};
    FcfsScheduler fcfs;
    EngineConfig cfg;
    cfg.recordEvents = true;
    SchedulerEngine engine(cfg);
    EngineResult r = engine.run(reqs, fcfs);
    ASSERT_EQ(r.events.size(), 2u);
    EXPECT_EQ(r.events[0].requestId, 0);
    EXPECT_EQ(r.events[0].layer, 0u);
    EXPECT_DOUBLE_EQ(r.events[0].start, 0.0);
    EXPECT_DOUBLE_EQ(r.events[0].end, 0.1);
    EXPECT_DOUBLE_EQ(r.events[1].start, 0.1);
}

TEST(Engine, DecisionCountMatchesLayerTotal)
{
    World w = twoModelWorld();
    std::vector<Request> reqs = {w.request(0, "long", 0.0),
                                 w.request(1, "short", 0.0)};
    FcfsScheduler fcfs;
    SchedulerEngine engine;
    EngineResult r = engine.run(reqs, fcfs);
    // One decision per executed layer.
    EXPECT_EQ(r.decisions, 6u);
}

TEST(Engine, RerunAfterResetIsIdentical)
{
    World w = twoModelWorld();
    std::vector<Request> reqs = {w.request(0, "long", 0.0),
                                 w.request(1, "short", 0.3)};
    SjfScheduler sjf(w.lut);
    SchedulerEngine engine;
    EngineResult r1 = engine.run(reqs, sjf);
    EngineResult r2 = engine.run(reqs, sjf);
    EXPECT_DOUBLE_EQ(r1.metrics.antt, r2.metrics.antt);
    EXPECT_EQ(r1.preemptions, r2.preemptions);
}

TEST(Engine, LastRunEndTracksExecution)
{
    World w = twoModelWorld();
    std::vector<Request> reqs = {w.request(0, "long", 0.0)};
    FcfsScheduler fcfs;
    SchedulerEngine engine;
    engine.run(reqs, fcfs);
    EXPECT_DOUBLE_EQ(reqs[0].lastRunEnd, 4.0);
}

TEST(Engine, BlockGranularityDefersPreemption)
{
    World w = twoModelWorld();
    std::vector<Request> reqs = {w.request(0, "long", 0.0),
                                 w.request(1, "short", 0.5)};
    SjfScheduler sjf(w.lut);
    EngineConfig cfg;
    cfg.layerBlockSize = 4; // whole model in one block
    SchedulerEngine engine(cfg);
    EngineResult r = engine.run(reqs, sjf);
    // The long job runs all four layers non-preemptibly; the short
    // one cannot jump in at t=1 as it does with per-layer blocks.
    EXPECT_DOUBLE_EQ(reqs[0].finishTime, 4.0);
    EXPECT_DOUBLE_EQ(reqs[1].finishTime, 4.2);
    EXPECT_EQ(r.preemptions, 0u);
}

TEST(Engine, BlockGranularityReducesDecisions)
{
    World w = twoModelWorld();
    std::vector<Request> reqs = {w.request(0, "long", 0.0),
                                 w.request(1, "long", 0.0)};
    FcfsScheduler fcfs;
    EngineConfig cfg;
    cfg.layerBlockSize = 2;
    SchedulerEngine engine(cfg);
    EngineResult r = engine.run(reqs, fcfs);
    // 8 layers in blocks of 2 -> 4 decisions.
    EXPECT_EQ(r.decisions, 4u);
    EXPECT_EQ(r.metrics.completed, 2u);
}

TEST(Engine, BlockLargerThanModelIsHarmless)
{
    World w = twoModelWorld();
    std::vector<Request> reqs = {w.request(0, "short", 0.0)};
    FcfsScheduler fcfs;
    EngineConfig cfg;
    cfg.layerBlockSize = 100;
    SchedulerEngine engine(cfg);
    EngineResult r = engine.run(reqs, fcfs);
    EXPECT_DOUBLE_EQ(reqs[0].finishTime, 0.2);
    EXPECT_EQ(r.decisions, 1u);
}

TEST(Engine, EventsAreGaplessWhileWorkIsQueued)
{
    // Property: between the first arrival and the last completion,
    // the accelerator never idles while requests wait — consecutive
    // events either abut or are separated only by empty-queue gaps
    // (which cannot happen here since all requests arrive at t=0).
    World w = twoModelWorld();
    std::vector<Request> reqs;
    for (int i = 0; i < 10; ++i)
        reqs.push_back(w.request(i, i % 2 ? "long" : "short", 0.0));
    SjfScheduler sjf(w.lut);
    EngineConfig cfg;
    cfg.recordEvents = true;
    SchedulerEngine engine(cfg);
    EngineResult r = engine.run(reqs, sjf);
    ASSERT_FALSE(r.events.empty());
    EXPECT_DOUBLE_EQ(r.events.front().start, 0.0);
    for (size_t e = 1; e < r.events.size(); ++e) {
        EXPECT_NEAR(r.events[e].start, r.events[e - 1].end, 1e-12);
    }
}

TEST(Engine, EventsCoverEveryLayerExactlyOnce)
{
    World w = twoModelWorld();
    std::vector<Request> reqs = {w.request(0, "long", 0.0),
                                 w.request(1, "short", 0.1)};
    SjfScheduler sjf(w.lut);
    EngineConfig cfg;
    cfg.recordEvents = true;
    SchedulerEngine engine(cfg);
    EngineResult r = engine.run(reqs, sjf);
    std::map<int, std::vector<size_t>> layers_seen;
    for (const auto& ev : r.events)
        layers_seen[ev.requestId].push_back(ev.layer);
    ASSERT_EQ(layers_seen[0].size(), 4u);
    ASSERT_EQ(layers_seen[1].size(), 2u);
    // Per request, layers execute in order with no repeats.
    for (auto& [id, layers] : layers_seen) {
        for (size_t k = 0; k < layers.size(); ++k)
            EXPECT_EQ(layers[k], k) << "request " << id;
    }
}

TEST(Engine, RequestWithoutTracePanics)
{
    std::vector<Request> reqs(1);
    reqs[0].id = 0;
    FcfsScheduler fcfs;
    SchedulerEngine engine;
    EXPECT_DEATH(engine.run(reqs, fcfs), "without a trace");
}

// --- Request accessors ---

TEST(Request, TrueRemainingTracksProgress)
{
    World w = twoModelWorld();
    Request req = w.request(0, "long", 0.0);
    EXPECT_DOUBLE_EQ(req.trueRemaining(), 4.0);
    req.nextLayer = 3;
    EXPECT_DOUBLE_EQ(req.trueRemaining(), 1.0);
    req.nextLayer = 4;
    EXPECT_DOUBLE_EQ(req.trueRemaining(), 0.0);
}

TEST(Request, DeadlineUsesReferenceLatency)
{
    World w = twoModelWorld();
    Request req = w.request(0, "short", 2.0, 10.0);
    EXPECT_DOUBLE_EQ(req.deadline, 2.0 + 10.0 * 0.2);
}

TEST(Request, ViolationAndTurnaround)
{
    World w = twoModelWorld();
    Request req = w.request(0, "short", 0.0, 10.0);
    req.finishTime = 1.0;
    EXPECT_DOUBLE_EQ(req.normalizedTurnaround(), 5.0);
    EXPECT_FALSE(req.violated()); // deadline = 2.0
    req.finishTime = 2.5;
    EXPECT_TRUE(req.violated());
}

// --- Metrics ---

TEST(Metrics, HandComputedAggregates)
{
    World w = twoModelWorld();
    std::vector<Request> reqs = {w.request(0, "short", 0.0),
                                 w.request(1, "short", 1.0)};
    reqs[0].finishTime = 0.4;  // turnaround 0.4 -> nt 2.0
    reqs[0].nextLayer = 2;
    reqs[1].finishTime = 1.2;  // turnaround 0.2 -> nt 1.0
    reqs[1].nextLayer = 2;

    Metrics m = computeMetrics(reqs);
    EXPECT_DOUBLE_EQ(m.antt, 1.5);
    EXPECT_DOUBLE_EQ(m.violationRate, 0.0);
    EXPECT_DOUBLE_EQ(m.stp, 0.5 + 1.0);
    EXPECT_DOUBLE_EQ(m.makespan, 1.2);
    EXPECT_NEAR(m.throughput, 2.0 / 1.2, 1e-12);
    EXPECT_EQ(m.completed, 2u);
}

TEST(Metrics, ViolationCounting)
{
    World w = twoModelWorld();
    std::vector<Request> reqs = {w.request(0, "short", 0.0, 2.0),
                                 w.request(1, "short", 0.0, 2.0)};
    // Deadline = 0.4 for both.
    reqs[0].finishTime = 0.39;
    reqs[1].finishTime = 0.41;
    Metrics m = computeMetrics(reqs);
    EXPECT_DOUBLE_EQ(m.violationRate, 0.5);
}

TEST(Metrics, EmptyInputGivesZeroes)
{
    Metrics m = computeMetrics({});
    EXPECT_DOUBLE_EQ(m.antt, 0.0);
    EXPECT_EQ(m.completed, 0u);
}

TEST(Metrics, UnfinishedRequestPanics)
{
    World w = twoModelWorld();
    std::vector<Request> reqs = {w.request(0, "short", 0.0)};
    EXPECT_DEATH(computeMetrics(reqs), "unfinished");
}
