/**
 * @file
 * Dynamic batching configuration: knobs and the spec grammar for the
 * batch formation layer of the unified simulation core.
 *
 * Production serving stacks amortize dispatch by executing several
 * requests per accelerator pass; this subsystem brings that to the
 * simulator. A batch is a set of requests co-executing layer steps
 * on one node in lockstep — each member advances its *own* next
 * layer, and the step's wall time is the slowest member's layer
 * latency inflated by a calibrated marginal-member overhead:
 *
 *     step = max_m latency(m.nextLayer) * (1 + overhead * (k - 1))
 *
 * so one dense straggler taxes every sparse member of its batch.
 * That tax is exactly what the *composition* policies manage:
 *
 *     fifo      members in node queue order (the baseline)
 *     greedy    shortest estimated remaining latency first (drain
 *               quick requests to free batch slots sooner)
 *     sparsity  members whose sparsity-refined per-layer estimate is
 *               closest to the anchor's — group requests of similar
 *               predicted density so step time tracks the mean, not
 *               the max, of the queue
 *
 * Requests may join a running batch at layer boundaries (continuous
 * batching); formation may hold an idle node for up to `delay` to
 * let the batch fill. Construction is from compact spec strings (the
 * scenario-file / CLI convention of api/registry.hh):
 *
 *     batcher:size=8,delay=2ms,compose=sparsity,overhead=0.05
 *
 * An empty spec disables batching — the core then runs bit-identical
 * to a build without this subsystem.
 *
 * Pure configuration: no simulation state and no sim includes, so
 * the core (src/sim/core.hh) can embed `BatchConfig` without
 * layering cycles.
 */

#ifndef DYSTA_BATCH_BATCH_HH
#define DYSTA_BATCH_BATCH_HH

#include <cstdint>
#include <string>

namespace dysta {

/** How the formation layer fills a batch around its anchor. */
enum class BatchCompose : uint8_t
{
    Fifo = 0,     ///< node queue order (baseline)
    Greedy = 1,   ///< shortest estimated remaining latency first
    Sparsity = 2, ///< closest predicted per-layer density to anchor
};

std::string toString(BatchCompose compose);

/** Parse "fifo" / "greedy" / "sparsity"; fatal() otherwise. */
BatchCompose batchComposeFromName(const std::string& name);

/** Dynamic-batching knobs of one simulation run. */
struct BatchConfig
{
    bool enabled = false;
    /** Maximum members per batch (>= 1). */
    int maxSize = 8;
    /**
     * Maximum fill wait in seconds: an idle node with fewer than
     * `maxSize` queued requests holds formation until its oldest
     * queued request has waited this long. 0 forms immediately.
     */
    double maxDelaySec = 0.0;
    /** Composition policy filling the batch around the anchor. */
    BatchCompose compose = BatchCompose::Fifo;
    /**
     * Marginal per-member step-time inflation (>= 0): a k-member
     * step costs max-member-latency * (1 + overhead * (k - 1)).
     */
    double overhead = 0.05;

    /** Canonical spec form ("" when disabled). */
    std::string str() const;
};

/**
 * Parse "batcher:size=,delay=,compose=,overhead="; "" disables.
 * `delay` accepts seconds with an optional unit suffix ("2ms",
 * "0.5s", "0.002"). fatal() on malformed specs or out-of-range
 * parameters.
 */
BatchConfig batchConfigFromSpec(const std::string& spec);

} // namespace dysta

#endif // DYSTA_BATCH_BATCH_HH
