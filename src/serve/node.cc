#include "serve/node.hh"

#include <algorithm>

#include "util/logging.hh"

namespace dysta {

NodeProfile
referenceNodeProfile(const std::string& name)
{
    NodeProfile p;
    p.name = name;
    p.speedFactor = 1.0;
    return p;
}

NodeProfile
scaledNodeProfile(const std::string& name, double speed)
{
    fatalIf(speed <= 0.0,
            "scaledNodeProfile: speed factor must be positive");
    NodeProfile p;
    p.name = name;
    p.speedFactor = speed;
    return p;
}

ServeNode::ServeNode(int id, NodeProfile profile,
                     std::unique_ptr<Scheduler> policy)
    : nodeId(id), prof(std::move(profile)), sched(std::move(policy))
{
    panicIf(sched == nullptr, "ServeNode: null scheduling policy");
    fatalIf(prof.speedFactor <= 0.0,
            "ServeNode: speed factor must be positive");
}

double
ServeNode::eventTime() const
{
    panicIf(!busy(), "ServeNode::eventTime on idle node");
    return layerEnd;
}

double
ServeNode::layerLatency(const LayerTrace& layer) const
{
    return layer.latency / prof.speedFactor;
}

void
ServeNode::enqueue(Request* req, double now)
{
    panicIf(req == nullptr || req->trace == nullptr ||
                req->trace->layers.empty(),
            "ServeNode: request without a trace");
    req->nextLayer = 0;
    req->executedTime = 0.0;
    req->lastRunEnd = req->arrival;
    req->finishTime = -1.0;
    ready.push_back(req);
    sched->onArrival(*req, now);
}

double
ServeNode::startLayer(double now)
{
    const LayerTrace& layer =
        blockOwner->trace->layers[blockOwner->nextLayer];
    running = blockOwner;
    layerEnd = now + layerLatency(layer);
    return layerEnd;
}

double
ServeNode::beginBlock(double now)
{
    panicIf(busy(), "ServeNode::beginBlock while busy");
    panicIf(ready.empty(), "ServeNode::beginBlock with empty queue");

    std::vector<const Request*> view(ready.begin(), ready.end());
    size_t pick = sched->selectNext(view, now);
    ++numDecisions;
    panicIf(pick >= ready.size(),
            "ServeNode: scheduler returned invalid index");
    blockOwner = ready[pick];
    blockExecuted = 0;

    if (lastRun != nullptr && blockOwner != lastRun &&
        lastRun->nextLayer > 0 && !lastRun->done()) {
        ++numPreemptions;
    }

    return startLayer(now + prof.decisionOverheadSec);
}

Request*
ServeNode::completeLayer()
{
    panicIf(!busy(), "ServeNode::completeLayer on idle node");
    Request* req = running;
    const LayerTrace& layer = req->trace->layers[req->nextLayer];

    req->executedTime += layerLatency(layer);
    ++req->nextLayer;
    req->lastRunEnd = layerEnd;
    lastSparsity = layer.monitoredSparsity;
    ++blockExecuted;
    running = nullptr;

    sched->onLayerComplete(*req, layerEnd, layer.monitoredSparsity);

    if (req->done()) {
        req->finishTime = layerEnd;
        sched->onComplete(*req, layerEnd);
        ready.erase(std::find(ready.begin(), ready.end(), req));
        ++numCompleted;
        blockOwner = nullptr;
        lastRun = nullptr;
        return req;
    }
    lastRun = req;
    return nullptr;
}

bool
ServeNode::blockContinues() const
{
    panicIf(busy(), "ServeNode::blockContinues while busy");
    size_t block = std::max<size_t>(1, prof.layerBlockSize);
    return blockOwner != nullptr && !blockOwner->done() &&
           blockExecuted < block;
}

double
ServeNode::continueBlock(double now)
{
    panicIf(!blockContinues(), "ServeNode::continueBlock at boundary");
    (void)now; // layers within a block run back to back
    return startLayer(layerEnd);
}

} // namespace dysta
