/**
 * @file
 * Fig. 15 reproduction: robustness across arrival rates. Sweeps the
 * Poisson request rate from 10 to 40 req/s for multi-AttNNs and
 * 2 to 6 req/s for multi-CNNs at M_slo = 10x, for all Table 5
 * schedulers plus the Oracle.
 *
 * This main is the built-in "fig15" scenario plus flag overrides;
 * `sdysta scenarios/fig15.scn` runs the identical grid (the sweep
 * microbenchmark micro_sweep measures the same cells).
 */

#include <cstdio>

#include "api/report.hh"
#include "api/scenario.hh"
#include "util/args.hh"

using namespace dysta;

int
main(int argc, char** argv)
{
    ArgParser args("fig15_arrival_sweep",
                   "Fig. 15 reproduction: violation rate, throughput "
                   "and ANTT across arrival rates (the built-in "
                   "'fig15' scenario).");
    args.addInt("--requests", 600, "requests per workload");
    args.addInt("--seeds", 3, "seed replicas per grid point");
    args.addJobs();
    args.addTraceCache();
    args.addString("--out", "BENCH_fig15.json", "report path");
    args.parse(argc, argv);

    ScenarioSpec spec = builtinScenario("fig15");
    spec.requests = args.getInt("--requests");
    spec.seeds = args.getInt("--seeds");

    ScenarioRunOptions options;
    options.jobs = args.getInt("--jobs");
    options.traceCache = args.getString("--trace-cache");
    ScenarioResult result = runScenario(spec, options);
    printScenarioTable(result);
    std::printf("Reproduction target: all metrics rise with the "
                "arrival rate; throughput saturates identically for "
                "every scheduler (it is capacity-bound); Dysta's "
                "lead grows with traffic.\n");

    Reporter report("fig15_arrival_sweep");
    report.meta("jobs", result.jobs);
    report.add(result);
    report.writeJson(args.getString("--out"));
    return 0;
}
