/**
 * @file
 * Ablation bench: scheduling granularity. Sec. 4.2.2 assumes
 * execution "in a per-layer or per-layer-block manner"; this sweep
 * quantifies what coarser preemption points cost. Larger blocks mean
 * fewer scheduler invocations (lower overhead pressure) but delayed
 * preemption: short urgent requests wait for the running block to
 * drain.
 *
 * The (workload x block size x seed) grid runs as independent cells
 * on the parallel SweepRunner; output is identical for any --jobs.
 *
 * Usage: ablation_granularity [--requests N] [--seeds K] [--jobs N]
 *                             [--trace-cache DIR]
 */

#include <cstdio>

#include "exp/sweep.hh"
#include "util/args.hh"
#include "util/table.hh"

using namespace dysta;

int
main(int argc, char** argv)
{
    ArgParser args("ablation_granularity",
                   "Scheduling-granularity ablation: layer-block "
                   "size vs preemptions and metrics.");
    args.addInt("--requests", 600, "requests per workload");
    args.addInt("--seeds", 3, "seed replicas");
    args.addJobs();
    args.addTraceCache();
    args.parse(argc, argv);
    int requests = args.getInt("--requests");
    int seeds = args.getInt("--seeds");

    auto ctx = makeBenchContext(BenchSetup{},
                                args.getString("--trace-cache"));
    SweepRunner runner(*ctx, args.getInt("--jobs"));

    const size_t blocks[] = {1, 2, 4, 8, 16, 64};
    const WorkloadKind kinds[] = {WorkloadKind::MultiAttNN,
                                  WorkloadKind::MultiCNN};

    std::vector<SweepCell> cells;
    for (WorkloadKind kind : kinds) {
        for (size_t block : blocks) {
            SweepCell cell;
            cell.workload.kind = kind;
            cell.workload.arrivalRate =
                kind == WorkloadKind::MultiAttNN ? 30.0 : 3.0;
            cell.workload.sloMultiplier = 10.0;
            cell.workload.numRequests = requests;
            cell.workload.seed = 42;
            cell.scheduler = "Dysta";
            cell.layerBlockSize = block;
            for (const SweepCell& c : seedReplicas(cell, seeds))
                cells.push_back(c);
        }
    }
    std::vector<SweepCellResult> results = runner.run(cells);

    size_t g = 0;
    for (WorkloadKind kind : kinds) {
        AsciiTable t("Scheduling granularity ablation (Dysta), " +
                     toString(kind));
        t.setHeader({"layers/block", "ANTT", "violation [%]",
                     "decisions", "preemptions"});
        for (size_t block : blocks) {
            double antt = 0.0;
            double viol = 0.0;
            size_t decisions = 0;
            size_t preemptions = 0;
            for (int s = 0; s < seeds; ++s) {
                const SweepCellResult& r = results[g++];
                antt += r.metrics.antt;
                viol += r.metrics.violationRate;
                decisions += r.decisions;
                preemptions += r.preemptions;
            }
            t.addRow({std::to_string(block),
                      AsciiTable::num(antt / seeds, 2),
                      AsciiTable::num(viol / seeds * 100.0, 1),
                      std::to_string(decisions / seeds),
                      std::to_string(preemptions / seeds)});
        }
        t.print();
    }
    std::printf("Read: per-layer scheduling buys its ANTT/violation "
                "edge with ~tens of thousands of (hardware-cheap) "
                "decisions; block sizes past ~8 layers visibly delay "
                "preemption.\n");
    return 0;
}
