/**
 * @file
 * Dynamic-batching bench: batch composition policies vs unbatched
 * serving on the multi-AttNN scenario under bursty (MMPP) arrivals.
 *
 * One grid, four slices at matched formation knobs (max size, fill
 * window): unbatched, FIFO composition, size-greedy composition and
 * sparsity-aware composition. The headline is SLO goodput
 * (in-deadline completions per second): sparsity-aware composition
 * must beat FIFO at the same knobs — grouping members with similar
 * sparsity-refined per-layer latencies shrinks the straggler tax a
 * batch step pays for its occupancy. Batching must actually bite
 * (batches form, occupancy > 1), the unbatched slice must report no
 * batch stats at all, and a 1-job vs 4-job repeat of the grid must
 * be bit-identical. Emits BENCH_batching.json; exits non-zero on any
 * of those regressions.
 */

#include <cstdio>

#include "api/report.hh"
#include "api/scenario.hh"
#include "util/args.hh"
#include "util/logging.hh"

using namespace dysta;

namespace {

/** The grid row whose batcher spec contains `needle`. */
const ScenarioRow&
rowFor(const ScenarioResult& result, const std::string& needle)
{
    for (const ScenarioRow& row : result.rows) {
        if (row.batcher.find(needle) != std::string::npos)
            return row;
    }
    fatal("bench_batching: no grid row matches batcher '" + needle +
          "'");
}

bool
sameMetrics(const Metrics& a, const Metrics& b)
{
    return a.antt == b.antt && a.violationRate == b.violationRate &&
           a.sloMissRate == b.sloMissRate &&
           a.p99Latency == b.p99Latency && a.goodput == b.goodput &&
           a.completed == b.completed && a.shed == b.shed &&
           a.makespan == b.makespan &&
           a.batching.formed == b.batching.formed &&
           a.batching.joins == b.batching.joins &&
           a.batching.steps == b.batching.steps &&
           a.batching.meanOccupancy == b.batching.meanOccupancy &&
           a.batching.stragglerTaxSec == b.batching.stragglerTaxSec;
}

} // namespace

int
main(int argc, char** argv)
{
    ArgParser args("bench_batching",
                   "Batch composition policies (FIFO / greedy / "
                   "sparsity-aware) vs unbatched serving at matched "
                   "formation knobs (the built-in 'batching' "
                   "scenario).");
    args.addInt("--requests", 400, "requests per workload");
    args.addDouble("--rate", 120.0, "MMPP base arrival rate [req/s]");
    args.addInt("--seed", 42, "workload seed");
    args.addInt("--seeds", 2, "seed replicas to average");
    args.addTraceCache();
    args.addString("--out", "BENCH_batching.json", "report path");
    args.parse(argc, argv);

    // The shipped scenario supplies the fleet, the scheduler and the
    // matched batcher axis; the bench only re-pins workload knobs.
    ScenarioSpec spec = builtinScenario("batching");
    spec.requests = args.getInt("--requests");
    spec.seed = static_cast<uint64_t>(args.getInt("--seed"));
    spec.seeds = args.getInt("--seeds");
    spec.workloads = {
        {WorkloadKind::MultiAttNN, args.getDouble("--rate")}};

    std::printf("Profiling AttNN models on Sanger...\n");
    auto ctx = makeBenchContext(scenarioSetup(spec),
                                args.getString("--trace-cache"));

    ScenarioRunOptions options;
    options.jobs = 1;
    options.ctx = ctx.get();
    ScenarioResult serial = runScenario(spec, options);

    // The jobs=1 vs jobs=4 gate: the parallel sweep must replay the
    // serial batch formation timelines bit-for-bit.
    ScenarioRunOptions parallel = options;
    parallel.jobs = 4;
    ScenarioResult repeat = runScenario(spec, parallel);

    printScenarioTable(serial);

    const ScenarioRow& off = rowFor(serial, "none");
    const ScenarioRow& fifo = rowFor(serial, "compose=fifo");
    const ScenarioRow& greedy = rowFor(serial, "compose=greedy");
    const ScenarioRow& sparsity = rowFor(serial, "compose=sparsity");

    bool deterministic = true;
    for (size_t i = 0; i < serial.rows.size(); ++i)
        deterministic = deterministic &&
                        sameMetrics(serial.rows[i].metrics,
                                    repeat.rows[i].metrics);

    // Batching must actually bite on the batched slices, and the
    // unbatched slice must carry no batch stats at all (the zero-
    // drift contract of the subsystem).
    bool batches_bite = fifo.metrics.batching.active &&
                        fifo.metrics.batching.formed > 0.0 &&
                        fifo.metrics.batching.meanOccupancy > 1.0 &&
                        sparsity.metrics.batching.active &&
                        sparsity.metrics.batching.meanOccupancy > 1.0;
    bool off_clean = !off.metrics.batching.active;
    // The acceptance gate: sparsity-aware composition must beat FIFO
    // on SLO goodput at the same formation knobs.
    bool sparsity_wins =
        sparsity.metrics.goodput > fifo.metrics.goodput;

    std::printf(
        "Read: at size=8/delay=2ms, sparsity-aware composition "
        "lifts SLO goodput %.2f -> %.2f req/s vs FIFO (%s; greedy "
        "%.2f, unbatched %.2f req/s), trimming the straggler tax "
        "%.2fs -> %.2fs at occupancy %.2f vs %.2f; 1-job vs 4-job "
        "batching grids are %s.\n",
        fifo.metrics.goodput, sparsity.metrics.goodput,
        sparsity_wins ? "holds" : "REGRESSION",
        greedy.metrics.goodput, off.metrics.goodput,
        fifo.metrics.batching.stragglerTaxSec,
        sparsity.metrics.batching.stragglerTaxSec,
        sparsity.metrics.batching.meanOccupancy,
        fifo.metrics.batching.meanOccupancy,
        deterministic ? "bit-identical" : "NOT reproducible");

    Reporter report("bench_batching");
    report.meta("knobs", "size=8,delay=2ms");
    report.scalar("goodput_unbatched", off.metrics.goodput);
    report.scalar("goodput_fifo", fifo.metrics.goodput);
    report.scalar("goodput_greedy", greedy.metrics.goodput);
    report.scalar("goodput_sparsity", sparsity.metrics.goodput);
    report.scalar("goodput_gain",
                  fifo.metrics.goodput > 0.0
                      ? sparsity.metrics.goodput /
                                fifo.metrics.goodput -
                            1.0
                      : 0.0);
    report.scalar("batches_formed", fifo.metrics.batching.formed);
    report.scalar("occupancy_fifo",
                  fifo.metrics.batching.meanOccupancy);
    report.scalar("occupancy_sparsity",
                  sparsity.metrics.batching.meanOccupancy);
    report.scalar("straggler_tax_fifo",
                  fifo.metrics.batching.stragglerTaxSec);
    report.scalar("straggler_tax_sparsity",
                  sparsity.metrics.batching.stragglerTaxSec);
    report.scalar("sparsity_wins", sparsity_wins);
    report.scalar("batches_bite", batches_bite);
    report.scalar("off_clean", off_clean);
    report.scalar("deterministic", deterministic);
    report.add(serial);
    report.writeJson(args.getString("--out"));

    bool ok =
        deterministic && batches_bite && off_clean && sparsity_wins;
    if (!ok)
        std::printf("bench_batching: FAILED (%s%s%s%s)\n",
                    deterministic ? "" : "non-deterministic ",
                    batches_bite ? "" : "no-batches ",
                    off_clean ? "" : "off-row-tainted ",
                    sparsity_wins ? "" : "goodput-regression");
    return ok ? 0 : 1;
}
