/**
 * @file
 * Fixed-capacity FIFO modelling the hardware scheduler's tag/score/
 * SLO queues (Sec. 5.2.1). The depth is a synthesis parameter; the
 * model tracks peak occupancy so experiments can size the FIFOs.
 */

#ifndef DYSTA_HW_FIFO_HH
#define DYSTA_HW_FIFO_HH

#include <cstddef>
#include <vector>

#include "util/logging.hh"

namespace dysta {

/** Bounded FIFO with occupancy tracking. */
template <typename T>
class Fifo
{
  public:
    explicit Fifo(size_t max_depth)
        : depth(max_depth)
    {
        panicIf(max_depth == 0, "Fifo: depth must be positive");
    }

    bool full() const { return items.size() >= depth; }
    bool empty() const { return items.empty(); }
    size_t size() const { return items.size(); }
    size_t capacity() const { return depth; }
    size_t peakOccupancy() const { return peak; }

    /** Push one entry; returns false (drop) when full. */
    bool
    push(const T& item)
    {
        if (full())
            return false;
        items.push_back(item);
        peak = std::max(peak, items.size());
        return true;
    }

    /** Pop the oldest entry. @pre !empty() */
    T
    pop()
    {
        panicIf(items.empty(), "Fifo::pop on empty queue");
        T item = items.front();
        items.erase(items.begin());
        return item;
    }

    /** Random access for the score-update scan. @pre i < size() */
    T&
    at(size_t i)
    {
        panicIf(i >= items.size(), "Fifo::at out of range");
        return items[i];
    }

    const T&
    at(size_t i) const
    {
        panicIf(i >= items.size(), "Fifo::at out of range");
        return items[i];
    }

    /** Remove an entry by index (completion retires a request). */
    void
    erase(size_t i)
    {
        panicIf(i >= items.size(), "Fifo::erase out of range");
        items.erase(items.begin() + static_cast<ptrdiff_t>(i));
    }

    void clear() { items.clear(); }

  private:
    size_t depth;
    size_t peak = 0;
    std::vector<T> items;
};

} // namespace dysta

#endif // DYSTA_HW_FIFO_HH
