/**
 * @file
 * Fixed-size worker-thread pool for embarrassingly parallel sweeps.
 *
 * The experiment grids (scheduler x arrival-rate/SLO x seed) are
 * independent simulation cells; the pool runs them on all cores while
 * the callers keep deterministic, serial-order output by writing each
 * cell's result into a pre-sized slot. Jobs must not touch shared
 * mutable state — everything they read (trace pools, LUTs) is const.
 */

#ifndef DYSTA_UTIL_THREAD_POOL_HH
#define DYSTA_UTIL_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dysta {

/** Fixed set of worker threads draining a FIFO job queue. */
class ThreadPool
{
  public:
    /** @param num_threads worker count; 0 picks defaultConcurrency() */
    explicit ThreadPool(size_t num_threads = 0);

    /** Blocks until all submitted jobs have run. */
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /** Number of worker threads. */
    size_t size() const { return workers.size(); }

    /**
     * Enqueue a job. Jobs must not throw; wrap fallible work and
     * stash the error (see parallelFor).
     */
    void submit(std::function<void()> job);

    /** Block until the queue is empty and every worker is idle. */
    void wait();

    /** Hardware concurrency with a floor of 1. */
    static size_t defaultConcurrency();

  private:
    std::vector<std::thread> workers;
    std::deque<std::function<void()>> jobs;
    mutable std::mutex mtx;
    std::condition_variable workCv;
    std::condition_variable idleCv;
    size_t active = 0;
    bool stopping = false;

    void workerLoop();
};

/**
 * Run `fn(i)` for every i in [0, n) on up to `jobs` threads.
 * `jobs <= 1` (or n <= 1) runs inline on the caller; otherwise the
 * iterations are pulled from a shared atomic counter, so any
 * iteration may run on any thread — `fn` must only write state owned
 * by iteration i. The first exception thrown by any iteration is
 * rethrown on the caller after all threads join.
 */
void parallelFor(size_t n, size_t jobs,
                 const std::function<void(size_t)>& fn);

} // namespace dysta

#endif // DYSTA_UTIL_THREAD_POOL_HH
