// Fixture: a well-formed suppression that matches no finding —
// detlint reports unused-suppression so stale allowances cannot rot.
#include <map>
#include <string>
#include <vector>

std::vector<std::string> drain()
{
    std::map<std::string, int> ordered;
    std::vector<std::string> out;
    // detlint-allow(unordered-iter): this map is ordered, nothing here
    for (const auto& [key, value] : ordered)
        out.push_back(key);
    return out;
}
