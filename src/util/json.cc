#include "util/json.hh"

#include <cmath>
#include <cstdio>
#include <fstream>

#include "util/logging.hh"
#include "util/parse.hh"

namespace dysta {

std::string
jsonEscape(const std::string& s)
{
    std::string out;
    out.reserve(s.size());
    for (unsigned char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    return out;
}

std::string
jsonNumber(double v)
{
    // JSON has no NaN/inf literals; null is the least-surprising
    // spelling a reader can still load.
    if (!std::isfinite(v))
        return "null";
    return shortestDouble(v);
}

void
JsonWriter::indent()
{
    out.append(2 * scopes.size(), ' ');
}

void
JsonWriter::beginValue()
{
    if (scopes.empty())
        return;
    if (dirty.back())
        out += ',';
    out += '\n';
    dirty.back() = true;
    indent();
}

void
JsonWriter::key(const std::string& k)
{
    panicIf(scopes.empty() || scopes.back() != Scope::Object,
            "JsonWriter: keyed member outside an object");
    beginValue();
    out += '"';
    out += jsonEscape(k);
    out += "\": ";
}

JsonWriter&
JsonWriter::beginObject()
{
    panicIf(!scopes.empty() && scopes.back() == Scope::Object,
            "JsonWriter: unnamed object directly inside an object");
    beginValue();
    out += '{';
    scopes.push_back(Scope::Object);
    dirty.push_back(false);
    return *this;
}

JsonWriter&
JsonWriter::beginObject(const std::string& k)
{
    key(k);
    out += '{';
    scopes.push_back(Scope::Object);
    dirty.push_back(false);
    return *this;
}

JsonWriter&
JsonWriter::endObject()
{
    panicIf(scopes.empty() || scopes.back() != Scope::Object,
            "JsonWriter: endObject without an open object");
    bool had = dirty.back();
    scopes.pop_back();
    dirty.pop_back();
    if (had) {
        out += '\n';
        indent();
    }
    out += '}';
    return *this;
}

JsonWriter&
JsonWriter::beginArray(const std::string& k)
{
    key(k);
    out += '[';
    scopes.push_back(Scope::Array);
    dirty.push_back(false);
    return *this;
}

JsonWriter&
JsonWriter::beginArray()
{
    panicIf(!scopes.empty() && scopes.back() == Scope::Object,
            "JsonWriter: unnamed array directly inside an object");
    beginValue();
    out += '[';
    scopes.push_back(Scope::Array);
    dirty.push_back(false);
    return *this;
}

JsonWriter&
JsonWriter::endArray()
{
    panicIf(scopes.empty() || scopes.back() != Scope::Array,
            "JsonWriter: endArray without an open array");
    bool had = dirty.back();
    scopes.pop_back();
    dirty.pop_back();
    if (had) {
        out += '\n';
        indent();
    }
    out += ']';
    return *this;
}

JsonWriter&
JsonWriter::field(const std::string& k, const std::string& v)
{
    key(k);
    out += '"';
    out += jsonEscape(v);
    out += '"';
    return *this;
}

JsonWriter&
JsonWriter::field(const std::string& k, const char* v)
{
    return field(k, std::string(v));
}

JsonWriter&
JsonWriter::field(const std::string& k, double v)
{
    key(k);
    out += jsonNumber(v);
    return *this;
}

JsonWriter&
JsonWriter::field(const std::string& k, int v)
{
    key(k);
    out += std::to_string(v);
    return *this;
}

JsonWriter&
JsonWriter::field(const std::string& k, int64_t v)
{
    key(k);
    out += std::to_string(v);
    return *this;
}

JsonWriter&
JsonWriter::field(const std::string& k, uint64_t v)
{
    key(k);
    out += std::to_string(v);
    return *this;
}

JsonWriter&
JsonWriter::field(const std::string& k, bool v)
{
    key(k);
    out += v ? "true" : "false";
    return *this;
}

JsonWriter&
JsonWriter::element(const std::string& v)
{
    panicIf(scopes.empty() || scopes.back() != Scope::Array,
            "JsonWriter: element outside an array");
    beginValue();
    out += '"';
    out += jsonEscape(v);
    out += '"';
    return *this;
}

JsonWriter&
JsonWriter::element(double v)
{
    panicIf(scopes.empty() || scopes.back() != Scope::Array,
            "JsonWriter: element outside an array");
    beginValue();
    out += jsonNumber(v);
    return *this;
}

std::string
JsonWriter::str() const
{
    panicIf(!scopes.empty(),
            "JsonWriter: document has unclosed scopes");
    return out;
}

bool
JsonWriter::writeFile(const std::string& path) const
{
    std::ofstream f(path);
    if (!f)
        return false;
    f << str() << '\n';
    return static_cast<bool>(f);
}

} // namespace dysta
