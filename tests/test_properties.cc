/**
 * @file
 * Property-style parameterized sweeps: invariants that must hold for
 * every (model, pattern) pair on the accelerator models, for every
 * predictor strategy, and for the Oracle-vs-Dysta dominance across
 * seeds. These are the broad nets behind the targeted unit tests.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <tuple>

#include "accel/eyeriss_v2.hh"
#include "accel/sanger.hh"
#include "core/latency_predictor.hh"
#include "exp/experiments.hh"
#include "models/zoo.hh"
#include "trace/profiler.hh"
#include "util/stats.hh"

using namespace dysta;

// --- Every CNN model x pattern on Eyeriss-V2 ---

using CnnPoint = std::tuple<std::string, SparsityPattern>;

class CnnAccelSweep : public ::testing::TestWithParam<CnnPoint>
{
  protected:
    ModelDesc model = makeModelByName(std::get<0>(GetParam()));
    SparsityPattern pattern = std::get<1>(GetParam());
    EyerissV2Model accel;
};

TEST_P(CnnAccelSweep, ProfilesCleanly)
{
    ProfileConfig cfg;
    cfg.numSamples = 12;
    TraceSet set = profileCnn(model, pattern,
                              defaultProfileFor(model.name), accel,
                              cfg);
    ASSERT_EQ(set.size(), 12u);
    for (const auto& sample : set.all()) {
        EXPECT_GT(sample.totalLatency, 0.0);
        EXPECT_TRUE(std::isfinite(sample.totalLatency));
        for (const auto& layer : sample.layers) {
            EXPECT_GT(layer.latency, 0.0);
            if (layer.monitored()) {
                EXPECT_GE(layer.monitoredSparsity, 0.0);
                EXPECT_LE(layer.monitoredSparsity, 1.0);
            }
        }
    }
}

TEST_P(CnnAccelSweep, HigherPruningRateNeverSlower)
{
    // Average isolated latency must be non-increasing in the weight
    // sparsity rate (zero skipping can only help in this model).
    ProfileConfig light_cfg;
    light_cfg.numSamples = 15;
    light_cfg.cnnSparsityRate = 0.3;
    ProfileConfig heavy_cfg = light_cfg;
    heavy_cfg.cnnSparsityRate = 0.8;
    TraceSet light = profileCnn(model, pattern,
                                defaultProfileFor(model.name), accel,
                                light_cfg);
    TraceSet heavy = profileCnn(model, pattern,
                                defaultProfileFor(model.name), accel,
                                heavy_cfg);
    EXPECT_LE(heavy.avgTotalLatency(),
              light.avgTotalLatency() * 1.001);
}

TEST_P(CnnAccelSweep, LutRemainingMatchesAvgLatency)
{
    ProfileConfig cfg;
    cfg.numSamples = 10;
    TraceSet set = profileCnn(model, pattern,
                              defaultProfileFor(model.name), accel,
                              cfg);
    ModelInfoLut lut;
    lut.addFromTrace(set);
    const ModelInfo& info = lut.lookup(model.name, pattern);
    EXPECT_NEAR(info.estRemaining(0), info.avgLatency,
                1e-9 * info.avgLatency);
    // Suffix sums are monotone non-increasing.
    for (size_t l = 1; l < info.remainingFrom.size(); ++l)
        EXPECT_LE(info.remainingFrom[l], info.remainingFrom[l - 1]);
}

std::vector<CnnPoint>
cnnPoints()
{
    std::vector<CnnPoint> points;
    for (const char* name :
         {"resnet50", "vgg16", "mobilenet", "ssd300", "googlenet",
          "inceptionv3"}) {
        for (SparsityPattern p : cnnPatterns())
            points.push_back({name, p});
    }
    return points;
}

INSTANTIATE_TEST_SUITE_P(
    AllCnnModels, CnnAccelSweep, ::testing::ValuesIn(cnnPoints()),
    [](const ::testing::TestParamInfo<CnnPoint>& point) {
        return std::get<0>(point.param) + "_" +
               toString(std::get<1>(point.param));
    });

// --- Every AttNN model on Sanger ---

class AttnAccelSweep : public ::testing::TestWithParam<std::string>
{
};

TEST_P(AttnAccelSweep, ProfilesCleanlyAndSeqLenDominatesLatency)
{
    ModelDesc model = makeModelByName(GetParam());
    SangerModel accel;
    ProfileConfig cfg;
    cfg.numSamples = 60;
    TraceSet set = profileAttn(model, defaultProfileFor(GetParam()),
                               accel, cfg);
    std::vector<double> seq;
    std::vector<double> lat;
    for (const auto& sample : set.all()) {
        EXPECT_GT(sample.totalLatency, 0.0);
        seq.push_back(static_cast<double>(sample.seqLen));
        lat.push_back(sample.totalLatency);
    }
    // Longer prompts cost more; correlation must be strong.
    EXPECT_GT(pearson(seq, lat), 0.9);
}

INSTANTIATE_TEST_SUITE_P(AllAttnModels, AttnAccelSweep,
                         ::testing::Values("bert", "gpt2", "bart"));

// --- Predictor strategies ---

class PredictorStrategySweep
    : public ::testing::TestWithParam<PredictorStrategy>
{
  protected:
    ModelInfo
    info()
    {
        ModelInfo i;
        i.model = "m";
        i.avgLayerLatency = {0.1, 0.1, 0.1};
        i.avgLayerSparsity = {0.5, 0.5, 0.5};
        i.avgNetworkSparsity = 0.5;
        i.avgLatency = 0.3;
        i.remainingFrom = {0.3, 0.2, 0.1, 0.0};
        return i;
    }
};

TEST_P(PredictorStrategySweep, NeutralObservationKeepsGammaOne)
{
    ModelInfo i = info();
    PredictorConfig cfg;
    cfg.strategy = GetParam();
    SparseLatencyPredictor pred(i, cfg);
    pred.observe(0, 0.5); // exactly the profile average
    EXPECT_NEAR(pred.gamma(), 1.0, 1e-12);
}

TEST_P(PredictorStrategySweep, SparserThanProfileLowersEstimate)
{
    ModelInfo i = info();
    PredictorConfig cfg;
    cfg.strategy = GetParam();
    SparseLatencyPredictor pred(i, cfg);
    pred.observe(0, 0.8);
    EXPECT_LT(pred.gamma(), 1.0);
    EXPECT_LT(pred.predictRemaining(1), i.estRemaining(1));
}

TEST_P(PredictorStrategySweep, DenserThanProfileRaisesEstimate)
{
    ModelInfo i = info();
    PredictorConfig cfg;
    cfg.strategy = GetParam();
    SparseLatencyPredictor pred(i, cfg);
    pred.observe(0, 0.2);
    EXPECT_GT(pred.gamma(), 1.0);
    EXPECT_GT(pred.predictRemaining(1), i.estRemaining(1));
}

TEST_P(PredictorStrategySweep, GammaStaysWithinClamps)
{
    ModelInfo i = info();
    PredictorConfig cfg;
    cfg.strategy = GetParam();
    SparseLatencyPredictor pred(i, cfg);
    for (double s : {0.0, 0.2, 0.5, 0.9, 0.95}) {
        pred.observe(1, s);
        EXPECT_GE(pred.gamma(), cfg.gammaMin);
        EXPECT_LE(pred.gamma(), cfg.gammaMax);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategies, PredictorStrategySweep,
    ::testing::Values(PredictorStrategy::AverageAll,
                      PredictorStrategy::LastN,
                      PredictorStrategy::LastOne),
    [](const ::testing::TestParamInfo<PredictorStrategy>& point) {
        std::string name = toString(point.param);
        for (char& c : name) {
            if (c == '-')
                c = '_';
        }
        return name;
    });

// --- Oracle dominance across seeds ---

class OracleDominance : public ::testing::TestWithParam<uint64_t>
{
  protected:
    static BenchContext&
    ctx()
    {
        static std::unique_ptr<BenchContext> instance = [] {
            BenchSetup setup;
            setup.samplesPerModel = 60;
            setup.includeCnn = false;
            return makeBenchContext(setup);
        }();
        return *instance;
    }
};

TEST_P(OracleDominance, OracleAnttNeverWorseThanDysta)
{
    WorkloadConfig wl;
    wl.kind = WorkloadKind::MultiAttNN;
    wl.arrivalRate = 30.0;
    wl.numRequests = 300;
    wl.seed = GetParam();
    auto oracle = makeSchedulerByName("Oracle", ctx(), wl.kind);
    auto dysta = makeSchedulerByName("Dysta", ctx(), wl.kind);
    double oracle_antt = runOne(ctx(), wl, *oracle).metrics.antt;
    double dysta_antt = runOne(ctx(), wl, *dysta).metrics.antt;
    // Perfect information bounds the predictor from below (small
    // tolerance: the score is a heuristic, not provably optimal).
    EXPECT_LE(oracle_antt, dysta_antt * 1.05) << "seed " << GetParam();
}

TEST_P(OracleDominance, DystaAnttNeverWorseThanLutSjf)
{
    WorkloadConfig wl;
    wl.kind = WorkloadKind::MultiAttNN;
    wl.arrivalRate = 30.0;
    wl.numRequests = 300;
    wl.seed = GetParam();
    auto sjf = makeSchedulerByName("SJF", ctx(), wl.kind);
    auto dysta = makeSchedulerByName("Dysta", ctx(), wl.kind);
    double sjf_antt = runOne(ctx(), wl, *sjf).metrics.antt;
    double dysta_antt = runOne(ctx(), wl, *dysta).metrics.antt;
    EXPECT_LE(dysta_antt, sjf_antt * 1.05) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, OracleDominance,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));
