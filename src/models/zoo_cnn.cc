/**
 * @file
 * CNN model builders with the published layer shapes: ResNet-50,
 * VGG-16, MobileNetV1, SSD-300, GoogLeNet and Inception-V3.
 */

#include "models/zoo.hh"

#include <cstdio>

#include "util/logging.hh"

namespace dysta {

namespace {

LayerDesc
conv(const std::string& name, int in_c, int out_c, int k, int stride,
     int out_h, int out_w, bool relu = true, int k_w = 0)
{
    LayerDesc l;
    l.name = name;
    l.kind = LayerKind::Conv;
    l.inChannels = in_c;
    l.outChannels = out_c;
    l.kernel = k;
    l.kernelW = k_w;
    l.stride = stride;
    l.outH = out_h;
    l.outW = out_w;
    l.reluAfter = relu;
    return l;
}

LayerDesc
dwConv(const std::string& name, int ch, int k, int stride, int out_h,
       int out_w)
{
    LayerDesc l;
    l.name = name;
    l.kind = LayerKind::DepthwiseConv;
    l.inChannels = ch;
    l.outChannels = ch;
    l.kernel = k;
    l.stride = stride;
    l.outH = out_h;
    l.outW = out_w;
    l.reluAfter = true;
    return l;
}

LayerDesc
fc(const std::string& name, int in_f, int out_f, bool relu)
{
    LayerDesc l;
    l.name = name;
    l.kind = LayerKind::FullyConnected;
    l.inFeatures = in_f;
    l.outFeatures = out_f;
    l.reluAfter = relu;
    return l;
}

} // namespace

ModelDesc
makeVgg16()
{
    ModelDesc m;
    m.name = "vgg16";
    m.family = ModelFamily::CNN;
    m.task = "image classification";

    struct Block { int out_c; int convs; int hw; };
    // Five blocks; spatial size while the block's convs run.
    const Block blocks[] = {
        {64, 2, 224}, {128, 2, 112}, {256, 3, 56},
        {512, 3, 28}, {512, 3, 14},
    };
    int in_c = 3;
    char name[32];
    for (int b = 0; b < 5; ++b) {
        for (int c = 0; c < blocks[b].convs; ++c) {
            std::snprintf(name, sizeof(name), "conv%d_%d", b + 1, c + 1);
            m.layers.push_back(conv(name, in_c, blocks[b].out_c, 3, 1,
                                    blocks[b].hw, blocks[b].hw));
            in_c = blocks[b].out_c;
        }
    }
    m.layers.push_back(fc("fc6", 512 * 7 * 7, 4096, true));
    m.layers.push_back(fc("fc7", 4096, 4096, true));
    m.layers.push_back(fc("fc8", 4096, 1000, false));
    return m;
}

ModelDesc
makeResNet50()
{
    ModelDesc m;
    m.name = "resnet50";
    m.family = ModelFamily::CNN;
    m.task = "image classification";

    m.layers.push_back(conv("conv1", 3, 64, 7, 2, 112, 112));

    struct Stage { int mid; int out; int blocks; int hw; };
    const Stage stages[] = {
        {64, 256, 3, 56}, {128, 512, 4, 28},
        {256, 1024, 6, 14}, {512, 2048, 3, 7},
    };
    int in_c = 64; // after the stem and max pool (56x56)
    char name[48];
    for (int s = 0; s < 4; ++s) {
        const Stage& st = stages[s];
        for (int b = 0; b < st.blocks; ++b) {
            // The first block of stages 2-4 downsamples via the 3x3.
            bool down = (b == 0 && s > 0);
            int hw = st.hw;
            std::snprintf(name, sizeof(name), "res%d_%d_1x1a", s + 2, b);
            // 1x1 reduce runs at the input resolution.
            m.layers.push_back(conv(name, in_c, st.mid, 1, 1,
                                    down ? hw * 2 : hw,
                                    down ? hw * 2 : hw));
            std::snprintf(name, sizeof(name), "res%d_%d_3x3", s + 2, b);
            m.layers.push_back(conv(name, st.mid, st.mid, 3,
                                    down ? 2 : 1, hw, hw));
            std::snprintf(name, sizeof(name), "res%d_%d_1x1b", s + 2, b);
            m.layers.push_back(conv(name, st.mid, st.out, 1, 1, hw, hw));
            if (b == 0) {
                std::snprintf(name, sizeof(name), "res%d_down", s + 2);
                m.layers.push_back(conv(name, in_c, st.out, 1,
                                        down ? 2 : 1, hw, hw, false));
            }
            in_c = st.out;
        }
    }
    m.layers.push_back(fc("fc", 2048, 1000, false));
    return m;
}

ModelDesc
makeMobileNetV1()
{
    ModelDesc m;
    m.name = "mobilenet";
    m.family = ModelFamily::CNN;
    m.task = "gesture recognition";

    m.layers.push_back(conv("conv1", 3, 32, 3, 2, 112, 112));

    struct Pair { int in_c; int out_c; int stride; int hw; };
    // (input channels, pointwise output, depthwise stride, output hw)
    const Pair pairs[] = {
        {32, 64, 1, 112}, {64, 128, 2, 56}, {128, 128, 1, 56},
        {128, 256, 2, 28}, {256, 256, 1, 28}, {256, 512, 2, 14},
        {512, 512, 1, 14}, {512, 512, 1, 14}, {512, 512, 1, 14},
        {512, 512, 1, 14}, {512, 512, 1, 14}, {512, 1024, 2, 7},
        {1024, 1024, 1, 7},
    };
    char name[32];
    int idx = 1;
    for (const auto& p : pairs) {
        std::snprintf(name, sizeof(name), "dw%d", idx);
        m.layers.push_back(dwConv(name, p.in_c, 3, p.stride, p.hw, p.hw));
        std::snprintf(name, sizeof(name), "pw%d", idx);
        m.layers.push_back(conv(name, p.in_c, p.out_c, 1, 1, p.hw, p.hw));
        ++idx;
    }
    m.layers.push_back(fc("fc", 1024, 1000, false));
    return m;
}

ModelDesc
makeSsd300()
{
    ModelDesc m;
    m.name = "ssd300";
    m.family = ModelFamily::CNN;
    m.task = "object detection";

    // VGG-16 backbone at 300x300 input.
    struct Block { int out_c; int convs; int hw; };
    const Block blocks[] = {
        {64, 2, 300}, {128, 2, 150}, {256, 3, 75},
        {512, 3, 38}, {512, 3, 19},
    };
    int in_c = 3;
    char name[32];
    for (int b = 0; b < 5; ++b) {
        for (int c = 0; c < blocks[b].convs; ++c) {
            std::snprintf(name, sizeof(name), "conv%d_%d", b + 1, c + 1);
            m.layers.push_back(conv(name, in_c, blocks[b].out_c, 3, 1,
                                    blocks[b].hw, blocks[b].hw));
            in_c = blocks[b].out_c;
        }
    }
    // FC layers converted to (dilated) convolutions.
    m.layers.push_back(conv("conv6", 512, 1024, 3, 1, 19, 19));
    m.layers.push_back(conv("conv7", 1024, 1024, 1, 1, 19, 19));
    // Extra feature layers.
    m.layers.push_back(conv("conv8_1", 1024, 256, 1, 1, 19, 19));
    m.layers.push_back(conv("conv8_2", 256, 512, 3, 2, 10, 10));
    m.layers.push_back(conv("conv9_1", 512, 128, 1, 1, 10, 10));
    m.layers.push_back(conv("conv9_2", 128, 256, 3, 2, 5, 5));
    m.layers.push_back(conv("conv10_1", 256, 128, 1, 1, 5, 5));
    m.layers.push_back(conv("conv10_2", 128, 256, 3, 1, 3, 3));
    m.layers.push_back(conv("conv11_1", 256, 128, 1, 1, 3, 3));
    m.layers.push_back(conv("conv11_2", 128, 256, 3, 1, 1, 1));

    // Multibox heads: (source channels, spatial, default boxes).
    struct Head { const char* src; int ch; int hw; int boxes; };
    const Head heads[] = {
        {"conv4_3", 512, 38, 4}, {"conv7", 1024, 19, 6},
        {"conv8_2", 512, 10, 6}, {"conv9_2", 256, 5, 6},
        {"conv10_2", 256, 3, 4}, {"conv11_2", 256, 1, 4},
    };
    for (const auto& h : heads) {
        std::snprintf(name, sizeof(name), "loc_%s", h.src);
        m.layers.push_back(conv(name, h.ch, h.boxes * 4, 3, 1, h.hw,
                                h.hw, false));
        std::snprintf(name, sizeof(name), "conf_%s", h.src);
        m.layers.push_back(conv(name, h.ch, h.boxes * 21, 3, 1, h.hw,
                                h.hw, false));
    }
    return m;
}

namespace {

/** Append one GoogLeNet inception module (six convolutions). */
void
addInceptionV1(ModelDesc& m, const std::string& id, int in_c, int c1,
               int c3r, int c3, int c5r, int c5, int pool_proj, int hw)
{
    m.layers.push_back(conv(id + "_1x1", in_c, c1, 1, 1, hw, hw));
    m.layers.push_back(conv(id + "_3x3r", in_c, c3r, 1, 1, hw, hw));
    m.layers.push_back(conv(id + "_3x3", c3r, c3, 3, 1, hw, hw));
    m.layers.push_back(conv(id + "_5x5r", in_c, c5r, 1, 1, hw, hw));
    m.layers.push_back(conv(id + "_5x5", c5r, c5, 5, 1, hw, hw));
    m.layers.push_back(conv(id + "_pool", in_c, pool_proj, 1, 1, hw, hw));
}

} // namespace

ModelDesc
makeGoogLeNet()
{
    ModelDesc m;
    m.name = "googlenet";
    m.family = ModelFamily::CNN;
    m.task = "image classification";

    m.layers.push_back(conv("conv1", 3, 64, 7, 2, 112, 112));
    m.layers.push_back(conv("conv2r", 64, 64, 1, 1, 56, 56));
    m.layers.push_back(conv("conv2", 64, 192, 3, 1, 56, 56));

    addInceptionV1(m, "3a", 192, 64, 96, 128, 16, 32, 32, 28);
    addInceptionV1(m, "3b", 256, 128, 128, 192, 32, 96, 64, 28);
    addInceptionV1(m, "4a", 480, 192, 96, 208, 16, 48, 64, 14);
    addInceptionV1(m, "4b", 512, 160, 112, 224, 24, 64, 64, 14);
    addInceptionV1(m, "4c", 512, 128, 128, 256, 24, 64, 64, 14);
    addInceptionV1(m, "4d", 512, 112, 144, 288, 32, 64, 64, 14);
    addInceptionV1(m, "4e", 528, 256, 160, 320, 32, 128, 128, 14);
    addInceptionV1(m, "5a", 832, 256, 160, 320, 32, 128, 128, 7);
    addInceptionV1(m, "5b", 832, 384, 192, 384, 48, 128, 128, 7);

    m.layers.push_back(fc("fc", 1024, 1000, false));
    return m;
}

namespace {

/** Inception-V3 "A" module (35x35): 5x5 and double-3x3 branches. */
void
addInceptionA(ModelDesc& m, const std::string& id, int in_c,
              int pool_proj)
{
    const int hw = 35;
    m.layers.push_back(conv(id + "_1x1", in_c, 64, 1, 1, hw, hw));
    m.layers.push_back(conv(id + "_5x5r", in_c, 48, 1, 1, hw, hw));
    m.layers.push_back(conv(id + "_5x5", 48, 64, 5, 1, hw, hw));
    m.layers.push_back(conv(id + "_d3x3r", in_c, 64, 1, 1, hw, hw));
    m.layers.push_back(conv(id + "_d3x3a", 64, 96, 3, 1, hw, hw));
    m.layers.push_back(conv(id + "_d3x3b", 96, 96, 3, 1, hw, hw));
    m.layers.push_back(conv(id + "_pool", in_c, pool_proj, 1, 1, hw, hw));
}

/** Inception-V3 "C" module (17x17) with factorized 7x7 branches. */
void
addInceptionC(ModelDesc& m, const std::string& id, int c7)
{
    const int hw = 17;
    const int in_c = 768;
    m.layers.push_back(conv(id + "_1x1", in_c, 192, 1, 1, hw, hw));
    m.layers.push_back(conv(id + "_7x7r", in_c, c7, 1, 1, hw, hw));
    m.layers.push_back(conv(id + "_1x7", c7, c7, 1, 1, hw, hw, true, 7));
    m.layers.push_back(conv(id + "_7x1", c7, 192, 7, 1, hw, hw, true, 1));
    m.layers.push_back(conv(id + "_d7x7r", in_c, c7, 1, 1, hw, hw));
    m.layers.push_back(conv(id + "_d7x1a", c7, c7, 7, 1, hw, hw, true, 1));
    m.layers.push_back(conv(id + "_d1x7a", c7, c7, 1, 1, hw, hw, true, 7));
    m.layers.push_back(conv(id + "_d7x1b", c7, c7, 7, 1, hw, hw, true, 1));
    m.layers.push_back(conv(id + "_d1x7b", c7, 192, 1, 1, hw, hw,
                            true, 7));
    m.layers.push_back(conv(id + "_pool", in_c, 192, 1, 1, hw, hw));
}

/** Inception-V3 "E" module (8x8) with split 3x3 branches. */
void
addInceptionE(ModelDesc& m, const std::string& id, int in_c)
{
    const int hw = 8;
    m.layers.push_back(conv(id + "_1x1", in_c, 320, 1, 1, hw, hw));
    m.layers.push_back(conv(id + "_3x3r", in_c, 384, 1, 1, hw, hw));
    m.layers.push_back(conv(id + "_1x3", 384, 384, 1, 1, hw, hw, true, 3));
    m.layers.push_back(conv(id + "_3x1", 384, 384, 3, 1, hw, hw, true, 1));
    m.layers.push_back(conv(id + "_d3x3r", in_c, 448, 1, 1, hw, hw));
    m.layers.push_back(conv(id + "_d3x3", 448, 384, 3, 1, hw, hw));
    m.layers.push_back(conv(id + "_d1x3", 384, 384, 1, 1, hw, hw,
                            true, 3));
    m.layers.push_back(conv(id + "_d3x1", 384, 384, 3, 1, hw, hw,
                            true, 1));
    m.layers.push_back(conv(id + "_pool", in_c, 192, 1, 1, hw, hw));
}

} // namespace

ModelDesc
makeInceptionV3()
{
    ModelDesc m;
    m.name = "inceptionv3";
    m.family = ModelFamily::CNN;
    m.task = "image classification";

    // Stem (299x299 input).
    m.layers.push_back(conv("stem1", 3, 32, 3, 2, 149, 149));
    m.layers.push_back(conv("stem2", 32, 32, 3, 1, 147, 147));
    m.layers.push_back(conv("stem3", 32, 64, 3, 1, 147, 147));
    m.layers.push_back(conv("stem4", 64, 80, 1, 1, 73, 73));
    m.layers.push_back(conv("stem5", 80, 192, 3, 1, 71, 71));

    addInceptionA(m, "5b", 192, 32);  // out 256
    addInceptionA(m, "5c", 256, 64);  // out 288
    addInceptionA(m, "5d", 288, 64);  // out 288

    // Reduction "B" module (35 -> 17).
    m.layers.push_back(conv("6a_3x3", 288, 384, 3, 2, 17, 17));
    m.layers.push_back(conv("6a_d3x3r", 288, 64, 1, 1, 35, 35));
    m.layers.push_back(conv("6a_d3x3a", 64, 96, 3, 1, 35, 35));
    m.layers.push_back(conv("6a_d3x3b", 96, 96, 3, 2, 17, 17));

    addInceptionC(m, "6b", 128);
    addInceptionC(m, "6c", 160);
    addInceptionC(m, "6d", 160);
    addInceptionC(m, "6e", 192);

    // Reduction "D" module (17 -> 8).
    m.layers.push_back(conv("7a_3x3r", 768, 192, 1, 1, 17, 17));
    m.layers.push_back(conv("7a_3x3", 192, 320, 3, 2, 8, 8));
    m.layers.push_back(conv("7a_7x7r", 768, 192, 1, 1, 17, 17));
    m.layers.push_back(conv("7a_1x7", 192, 192, 1, 1, 17, 17, true, 7));
    m.layers.push_back(conv("7a_7x1", 192, 192, 7, 1, 17, 17, true, 1));
    m.layers.push_back(conv("7a_3x3b", 192, 192, 3, 2, 8, 8));

    addInceptionE(m, "7b", 1280);
    addInceptionE(m, "7c", 2048);

    m.layers.push_back(fc("fc", 2048, 1000, false));
    return m;
}

} // namespace dysta
