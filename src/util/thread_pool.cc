#include "util/thread_pool.hh"

#include <algorithm>
#include <atomic>
#include <exception>

namespace dysta {

ThreadPool::ThreadPool(size_t num_threads)
{
    if (num_threads == 0)
        num_threads = defaultConcurrency();
    workers.reserve(num_threads);
    for (size_t i = 0; i < num_threads; ++i)
        workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::unique_lock<std::mutex> lock(mtx);
        stopping = true;
    }
    workCv.notify_all();
    for (auto& w : workers)
        w.join();
}

void
ThreadPool::submit(std::function<void()> job)
{
    {
        std::unique_lock<std::mutex> lock(mtx);
        jobs.push_back(std::move(job));
    }
    workCv.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mtx);
    idleCv.wait(lock, [this] { return jobs.empty() && active == 0; });
}

size_t
ThreadPool::defaultConcurrency()
{
    size_t n = std::thread::hardware_concurrency();
    return n > 0 ? n : 1;
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> job;
        {
            std::unique_lock<std::mutex> lock(mtx);
            workCv.wait(lock,
                        [this] { return stopping || !jobs.empty(); });
            if (jobs.empty())
                return; // stopping with a drained queue
            job = std::move(jobs.front());
            jobs.pop_front();
            ++active;
        }
        job();
        {
            std::unique_lock<std::mutex> lock(mtx);
            --active;
            if (jobs.empty() && active == 0)
                idleCv.notify_all();
        }
    }
}

void
parallelFor(size_t n, size_t jobs,
            const std::function<void(size_t)>& fn)
{
    if (n == 0)
        return;
    if (jobs == 0)
        jobs = ThreadPool::defaultConcurrency();

    std::atomic<size_t> next{0};
    std::exception_ptr error;
    std::mutex errorMtx;

    auto drain = [&] {
        for (;;) {
            size_t i = next.fetch_add(1, std::memory_order_relaxed);
            if (i >= n)
                return;
            try {
                fn(i);
            } catch (...) {
                std::unique_lock<std::mutex> lock(errorMtx);
                if (!error)
                    error = std::current_exception();
            }
        }
    };

    if (jobs <= 1 || n == 1) {
        // Same contract as the threaded path: every iteration runs,
        // the first exception is rethrown at the end.
        drain();
    } else {
        ThreadPool pool(std::min(jobs, n));
        for (size_t t = 0; t < pool.size(); ++t)
            pool.submit(drain);
        pool.wait();
    }

    if (error)
        std::rethrow_exception(error);
}

} // namespace dysta
