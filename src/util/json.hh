/**
 * @file
 * Minimal JSON emission and parsing with correct string escaping.
 *
 * The bench binaries used to assemble their BENCH_*.json reports by
 * fprintf string concatenation, which breaks the moment a scenario
 * name, fleet spec or policy parameter contains a quote, backslash
 * or control character. JsonWriter is a small streaming writer:
 * explicit object/array scopes, automatic comma placement,
 * two-space indentation, and every string routed through
 * jsonEscape(). Numbers are printed with %.17g so a written double
 * round-trips bit-exactly — the same convention the trace CSVs use.
 *
 * JsonValue/parseJson is the matching reader (`sdysta --diff` loads
 * two reports to compare them): a strict recursive-descent parser
 * over the full JSON grammar, object members kept in document order
 * so parse(write(x)) preserves member ordering.
 */

#ifndef DYSTA_UTIL_JSON_HH
#define DYSTA_UTIL_JSON_HH

#include <cstdint>
#include <string>
#include <vector>

namespace dysta {

/** A parsed JSON document node. */
struct JsonValue
{
    enum class Kind : uint8_t
    {
        Null = 0,
        Bool = 1,
        Number = 2,
        String = 3,
        Array = 4,
        Object = 5,
    };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    /** String payload (Kind::String). */
    std::string str;
    /** Array elements (Kind::Array). */
    std::vector<JsonValue> items;
    /** Object members in document order (Kind::Object). */
    std::vector<std::pair<std::string, JsonValue>> members;

    bool isNull() const { return kind == Kind::Null; }
    bool isObject() const { return kind == Kind::Object; }
    bool isArray() const { return kind == Kind::Array; }

    /** Member by key (objects); nullptr when absent or not one. */
    const JsonValue* find(const std::string& key) const;
};

std::string toString(JsonValue::Kind kind);

/**
 * Parse a complete JSON document (trailing whitespace allowed,
 * trailing garbage rejected). On failure returns false and sets
 * `error` to "offset N: reason".
 */
bool tryParseJson(const std::string& text, JsonValue& out,
                  std::string& error);

/** Parse a complete JSON document; fatal() on malformed input. */
JsonValue parseJson(const std::string& text);

/** Read and parse a JSON file; fatal() if unreadable or malformed. */
JsonValue parseJsonFile(const std::string& path);

/** JSON string-literal body for `s` (without surrounding quotes). */
std::string jsonEscape(const std::string& s);

/** Shortest exact decimal form of `v` ("%.17g"; NaN/inf -> null). */
std::string jsonNumber(double v);

/** Streaming JSON writer with scope tracking. */
class JsonWriter
{
  public:
    JsonWriter() = default;

    // --- structure ---------------------------------------------------
    /** Open the root object or a nested unnamed object (in arrays). */
    JsonWriter& beginObject();
    /** Open an object-valued member. */
    JsonWriter& beginObject(const std::string& key);
    JsonWriter& endObject();

    /** Open an array-valued member. */
    JsonWriter& beginArray(const std::string& key);
    /** Open an unnamed array (array of arrays). */
    JsonWriter& beginArray();
    JsonWriter& endArray();

    // --- members (inside an object) ----------------------------------
    JsonWriter& field(const std::string& key, const std::string& v);
    JsonWriter& field(const std::string& key, const char* v);
    JsonWriter& field(const std::string& key, double v);
    JsonWriter& field(const std::string& key, int v);
    JsonWriter& field(const std::string& key, int64_t v);
    JsonWriter& field(const std::string& key, uint64_t v);
    JsonWriter& field(const std::string& key, bool v);

    // --- elements (inside an array) ----------------------------------
    JsonWriter& element(const std::string& v);
    JsonWriter& element(double v);

    /**
     * The finished document. panic() if any scope is still open —
     * a truncated report must not look complete.
     */
    std::string str() const;

    /**
     * Drain the text buffered so far, resetting the buffer; scopes
     * may still be open and subsequent output continues seamlessly.
     * The streaming exporters (obs/chrome_trace.hh) flush drained
     * chunks to disk periodically, so a megascale trace export stays
     * bounded-memory: concatenating every drained chunk with the
     * final str() yields byte-for-byte the undrained document.
     */
    std::string drain();

    /** Write str() + trailing newline to `path`; false on I/O error. */
    bool writeFile(const std::string& path) const;

  private:
    enum class Scope : uint8_t { Object, Array };

    std::string out;
    std::vector<Scope> scopes;
    /** Whether the current scope already holds a member/element. */
    std::vector<bool> dirty;

    void beginValue();          ///< comma/newline before a new value
    void key(const std::string& k);
    void indent();
};

} // namespace dysta

#endif // DYSTA_UTIL_JSON_HH
