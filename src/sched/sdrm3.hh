/**
 * @file
 * SDRM3 (Kim et al., ASPLOS'24) MapScore scheduler reduced to the
 * single-accelerator setting per the paper's Sec. 6.1 note: the
 * hardware-preference term Pref is 1, and MapScore is the weighted
 * sum of Urgency (deadline pressure) and Fairness (relative
 * slowdown); the highest MapScore runs next. The weight alpha is
 * tuned following SDRM3's own methodology (grid search on the
 * benchmark, kept at the value that minimizes the combined metric).
 */

#ifndef DYSTA_SCHED_SDRM3_HH
#define DYSTA_SCHED_SDRM3_HH

#include "sched/scheduler.hh"

namespace dysta {

/** SDRM3 MapScore policy. */
class Sdrm3Scheduler : public Scheduler
{
  public:
    /**
     * @param lut   offline profile estimates
     * @param alpha urgency-vs-fairness weight in [0, 1]
     */
    explicit Sdrm3Scheduler(const ModelInfoLut& lut, double alpha_weight = 0.8)
        : Scheduler(std::make_unique<LutEstimator>(lut)), alpha(alpha_weight)
    {
    }

    std::string name() const override { return "SDRM3"; }

    size_t selectNext(const std::vector<const Request*>& ready,
                      double now) override;

  private:
    double alpha;
};

} // namespace dysta

#endif // DYSTA_SCHED_SDRM3_HH
