#include "sched/prema.hh"

#include <algorithm>

#include "util/logging.hh"

namespace dysta {

void
PremaScheduler::reset()
{
    Scheduler::reset();
    order.clear();
    slot.clear();
    nextSeq = 0;
}

PremaScheduler::Entry&
PremaScheduler::entryOf(const Request& req)
{
    auto it = slot.find(req.id);
    panicIf(it == slot.end(), "PREMA: unknown request");
    return order[it->second];
}

double
PremaScheduler::tokenOf(const Entry& e, double now) const
{
    // Token = priority x normalized waiting time (estimated
    // slowdown). Waiting excludes execution time, so a running
    // task's token freezes while it holds the accelerator.
    double waited = std::max(
        0.0, now - e.req->arrival - e.req->executedTime);
    return e.priority * waited / e.isol;
}

void
PremaScheduler::onArrival(const Request& req, double now)
{
    Scheduler::onArrival(req, now);
    panicIf(slot.count(req.id) > 0, "PREMA: duplicate request id");
    Entry e;
    e.req = &req;
    e.isol = std::max(est->isolated(req), 1e-12);
    e.remaining = est->remaining(req);
    e.seq = nextSeq++;
    slot[req.id] = order.size();
    order.push_back(e);
}

void
PremaScheduler::onLayerComplete(const Request& req, double now,
                                double monitored_sparsity)
{
    Scheduler::onLayerComplete(req, now, monitored_sparsity);
    // Lazy re-key: only the progressed request's remainder changed.
    auto it = slot.find(req.id);
    if (it != slot.end())
        order[it->second].remaining = est->remaining(req);
}

void
PremaScheduler::onComplete(const Request& req, double now)
{
    Scheduler::onComplete(req, now);
    auto it = slot.find(req.id);
    if (it == slot.end())
        return;
    size_t idx = it->second;
    slot.erase(it);
    if (idx != order.size() - 1) {
        order[idx] = order.back();
        slot[order[idx].req->id] = idx;
    }
    order.pop_back();
}

size_t
PremaScheduler::selectNext(const std::vector<const Request*>& ready,
                           double now)
{
    double max_token = 0.0;
    for (const Request* req : ready)
        max_token = std::max(max_token, tokenOf(entryOf(*req), now));

    // Candidates: tokens at (>=) the threshold; SJF among them. The
    // degrading-threshold mechanism of the PREMA paper admits every
    // task whose tokens reached a fraction of the current maximum,
    // so the pool is wider than the single argmax and the policy
    // stays SJF-like while still aging long waiters in.
    const double threshold = 0.5 * max_token;
    size_t best = ready.size();
    double best_remaining = 0.0;
    for (size_t i = 0; i < ready.size(); ++i) {
        if (tokenOf(entryOf(*ready[i]), now) < threshold)
            continue;
        // Fresh estimate (not the cache): the reference path must
        // be exact even for direct calls outside the engine.
        double remaining = est->remaining(*ready[i]);
        if (best == ready.size() || remaining < best_remaining) {
            best = i;
            best_remaining = remaining;
        }
    }
    panicIf(best == ready.size(), "PREMA: empty candidate set");
    return best;
}

Request*
PremaScheduler::pickNext(const std::vector<Request*>& ready, double now)
{
    panicIf(order.size() != ready.size(),
            "PremaScheduler: ready queue out of sync with engine "
            "(missing onArrival/onComplete callbacks?)");

    // Two tight passes over the dense cache — identical decisions to
    // selectNext, but no per-candidate hash or LUT lookups.
    double max_token = 0.0;
    for (const Entry& e : order)
        max_token = std::max(max_token, tokenOf(e, now));

    const double threshold = 0.5 * max_token;
    const Entry* best = nullptr;
    for (const Entry& e : order) {
        if (tokenOf(e, now) < threshold)
            continue;
        if (best == nullptr || e.remaining < best->remaining ||
            (e.remaining == best->remaining && e.seq < best->seq)) {
            best = &e;
        }
    }
    panicIf(best == nullptr, "PREMA: empty candidate set");
    return const_cast<Request*>(best->req);
}

} // namespace dysta
