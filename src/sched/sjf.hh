/**
 * @file
 * Shortest-Job First baseline (the paper's Fig. 5 variant): at every
 * layer boundary the request with the smallest estimated remaining
 * time runs next, i.e. preemptive shortest-remaining-time scheduling.
 * With the default LutEstimator the estimates are the sparsity-
 * unaware profiled averages; injecting a DystaEstimator or
 * OracleEstimator yields sparsity-refined or perfect SRTF.
 *
 * The ready queue is an IndexedMinHeap keyed by (estimated
 * remaining, enqueue order). Remainders change only when a layer of
 * that request completes (or a sparsity observation refines its
 * estimate), so the heap is re-keyed lazily in onLayerComplete and
 * pickNext is an O(1) peek.
 */

#ifndef DYSTA_SCHED_SJF_HH
#define DYSTA_SCHED_SJF_HH

#include "sched/scheduler.hh"
#include "sim/ready_queue.hh"

namespace dysta {

/** SJF / shortest-estimated-remaining-time policy. */
class SjfScheduler : public Scheduler
{
  public:
    /** @param lut offline profile estimates (kept by reference). */
    explicit SjfScheduler(const ModelInfoLut& lut)
        : Scheduler(std::make_unique<LutEstimator>(lut))
    {
    }

    /** SRTF under an arbitrary estimator. */
    explicit SjfScheduler(std::unique_ptr<LatencyEstimator> estimator)
        : Scheduler(std::move(estimator))
    {
    }

    std::string name() const override { return "SJF"; }

    void reset() override;
    void onArrival(const Request& req, double now) override;
    void onLayerComplete(const Request& req, double now,
                         double monitored_sparsity) override;
    void onComplete(const Request& req, double now) override;

    size_t selectNext(const std::vector<const Request*>& ready,
                      double now) override;

    Request* pickNext(const std::vector<Request*>& ready,
                      double now) override;

  private:
    IndexedMinHeap queue;
    int64_t nextSeq = 0; ///< enqueue order, the legacy tie-break
};

} // namespace dysta

#endif // DYSTA_SCHED_SJF_HH
