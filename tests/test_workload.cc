/**
 * @file
 * Unit tests for workload generation: Poisson arrivals, model mixes,
 * pattern assignment, per-model SLO references and determinism.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <set>

#include "exp/experiments.hh"
#include "util/stats.hh"
#include "workload/workload.hh"

using namespace dysta;

namespace {

/** One shared small context for all workload tests. */
BenchContext&
ctx()
{
    static std::unique_ptr<BenchContext> instance = [] {
        BenchSetup setup;
        setup.samplesPerModel = 30;
        return makeBenchContext(setup);
    }();
    return *instance;
}

} // namespace

TEST(Workload, GeneratesRequestedCount)
{
    WorkloadConfig cfg;
    cfg.kind = WorkloadKind::MultiAttNN;
    cfg.numRequests = 123;
    auto reqs = generateWorkload(cfg, ctx().registry);
    EXPECT_EQ(reqs.size(), 123u);
}

TEST(Workload, ArrivalsAreMonotoneAndPoisson)
{
    WorkloadConfig cfg;
    cfg.kind = WorkloadKind::MultiAttNN;
    cfg.arrivalRate = 25.0;
    cfg.numRequests = 4000;
    auto reqs = generateWorkload(cfg, ctx().registry);

    OnlineStats gaps;
    for (size_t i = 1; i < reqs.size(); ++i) {
        EXPECT_GE(reqs[i].arrival, reqs[i - 1].arrival);
        gaps.add(reqs[i].arrival - reqs[i - 1].arrival);
    }
    // Exponential gaps: mean 1/rate, stddev == mean.
    EXPECT_NEAR(gaps.mean(), 1.0 / 25.0, 0.002);
    EXPECT_NEAR(gaps.stddev(), 1.0 / 25.0, 0.004);
}

TEST(Workload, AttnnMixUsesLanguageModelsOnly)
{
    WorkloadConfig cfg;
    cfg.kind = WorkloadKind::MultiAttNN;
    cfg.numRequests = 300;
    auto reqs = generateWorkload(cfg, ctx().registry);
    std::set<std::string> seen;
    for (const auto& r : reqs) {
        seen.insert(r.modelName);
        EXPECT_EQ(r.pattern, SparsityPattern::Dense);
    }
    EXPECT_EQ(seen, (std::set<std::string>{"bert", "gpt2", "bart"}));
}

TEST(Workload, CnnMixCoversModelsAndPatterns)
{
    WorkloadConfig cfg;
    cfg.kind = WorkloadKind::MultiCNN;
    cfg.arrivalRate = 3.0;
    cfg.numRequests = 600;
    auto reqs = generateWorkload(cfg, ctx().registry);
    std::set<std::string> models;
    std::set<SparsityPattern> patterns;
    for (const auto& r : reqs) {
        models.insert(r.modelName);
        patterns.insert(r.pattern);
    }
    EXPECT_EQ(models,
              (std::set<std::string>{"ssd300", "vgg16", "resnet50",
                                     "mobilenet"}));
    EXPECT_EQ(patterns.size(), 3u);
}

TEST(Workload, SsdIsOversampledInCnnMix)
{
    // SSD appears twice in the mix (detection + hand tracking).
    WorkloadConfig cfg;
    cfg.kind = WorkloadKind::MultiCNN;
    cfg.numRequests = 5000;
    auto reqs = generateWorkload(cfg, ctx().registry);
    int ssd = 0;
    for (const auto& r : reqs)
        ssd += r.modelName == "ssd300";
    EXPECT_NEAR(static_cast<double>(ssd) / 5000.0, 0.4, 0.03);
}

TEST(Workload, DeadlineUsesModelAverageReference)
{
    WorkloadConfig cfg;
    cfg.kind = WorkloadKind::MultiAttNN;
    cfg.sloMultiplier = 7.0;
    cfg.numRequests = 50;
    auto reqs = generateWorkload(cfg, ctx().registry);
    for (const auto& r : reqs) {
        double ref =
            ctx().registry.get(r.modelName, r.pattern)
                .avgTotalLatency();
        EXPECT_NEAR(r.deadline, r.arrival + 7.0 * ref, 1e-9);
    }
}

TEST(Workload, DeterministicPerSeed)
{
    WorkloadConfig cfg;
    cfg.kind = WorkloadKind::MultiCNN;
    cfg.numRequests = 100;
    cfg.seed = 31;
    auto a = generateWorkload(cfg, ctx().registry);
    auto b = generateWorkload(cfg, ctx().registry);
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_DOUBLE_EQ(a[i].arrival, b[i].arrival);
        EXPECT_EQ(a[i].modelName, b[i].modelName);
        EXPECT_EQ(a[i].trace, b[i].trace);
    }
    cfg.seed = 32;
    auto c = generateWorkload(cfg, ctx().registry);
    int same = 0;
    for (size_t i = 0; i < a.size(); ++i)
        same += a[i].modelName == c[i].modelName &&
                a[i].trace == c[i].trace;
    EXPECT_LT(same, 30);
}

TEST(Workload, RegistryMissLookupIsFatal)
{
    EXPECT_EXIT(
        ctx().registry.get("resnet50", SparsityPattern::Dense),
        ::testing::ExitedWithCode(1), "missing traces");
}

TEST(Workload, BuildLutCoversAllSets)
{
    ModelInfoLut lut = ctx().registry.buildLut();
    EXPECT_EQ(lut.size(), ctx().registry.size());
    EXPECT_TRUE(lut.contains("bert", SparsityPattern::Dense));
    EXPECT_TRUE(
        lut.contains("resnet50", SparsityPattern::ChannelWise));
}

TEST(Workload, InvalidConfigIsFatal)
{
    WorkloadConfig cfg;
    cfg.arrivalRate = 0.0;
    EXPECT_EXIT(generateWorkload(cfg, ctx().registry),
                ::testing::ExitedWithCode(1), "arrival rate");
    cfg.arrivalRate = 1.0;
    cfg.numRequests = 0;
    EXPECT_EXIT(generateWorkload(cfg, ctx().registry),
                ::testing::ExitedWithCode(1), "at least one request");
}

TEST(Workload, KindNames)
{
    EXPECT_EQ(toString(WorkloadKind::MultiAttNN), "multi-AttNN");
    EXPECT_EQ(toString(WorkloadKind::MultiCNN), "multi-CNN");
}

TEST(Workload, RegistrySaveLoadRoundTrip)
{
    namespace fs = std::filesystem;
    std::string dir = "/tmp/dysta_registry_test";
    fs::remove_all(dir);
    fs::create_directories(dir);

    ctx().registry.saveAll(dir);
    TraceRegistry loaded = TraceRegistry::loadAll(dir);

    EXPECT_EQ(loaded.size(), ctx().registry.size());
    EXPECT_EQ(loaded.keys(), ctx().registry.keys());
    const TraceSet& orig =
        ctx().registry.get("bert", SparsityPattern::Dense);
    const TraceSet& back =
        loaded.get("bert", SparsityPattern::Dense);
    ASSERT_EQ(back.size(), orig.size());
    EXPECT_NEAR(back.avgTotalLatency(), orig.avgTotalLatency(),
                1e-12);
    for (size_t l = 0; l < orig.layerCount(); ++l) {
        EXPECT_NEAR(back.avgLayerSparsity()[l],
                    orig.avgLayerSparsity()[l], 1e-9);
    }
    fs::remove_all(dir);
}

TEST(Workload, LoadAllEmptyDirIsFatal)
{
    namespace fs = std::filesystem;
    std::string dir = "/tmp/dysta_registry_empty";
    fs::remove_all(dir);
    fs::create_directories(dir);
    EXPECT_EXIT(TraceRegistry::loadAll(dir),
                ::testing::ExitedWithCode(1), "no \\*.csv trace files");
    fs::remove_all(dir);
}

// --- arrival processes -----------------------------------------------------

TEST(Arrival, KindNames)
{
    EXPECT_EQ(toString(ArrivalKind::Poisson), "poisson");
    EXPECT_EQ(toString(ArrivalKind::Mmpp), "mmpp");
    EXPECT_EQ(toString(ArrivalKind::Diurnal), "diurnal");
}

TEST(Arrival, MmppIsMonotoneDeterministicAndBurstier)
{
    WorkloadConfig cfg;
    cfg.kind = WorkloadKind::MultiAttNN;
    cfg.arrivalRate = 25.0;
    cfg.arrival.kind = ArrivalKind::Mmpp;
    cfg.numRequests = 4000;
    auto reqs = generateWorkload(cfg, ctx().registry);
    auto again = generateWorkload(cfg, ctx().registry);

    OnlineStats gaps;
    for (size_t i = 1; i < reqs.size(); ++i) {
        EXPECT_GE(reqs[i].arrival, reqs[i - 1].arrival);
        EXPECT_DOUBLE_EQ(reqs[i].arrival, again[i].arrival);
        gaps.add(reqs[i].arrival - reqs[i - 1].arrival);
    }
    // A modulated Poisson process is overdispersed: the gap
    // coefficient of variation exceeds the exponential's 1.
    EXPECT_GT(gaps.stddev() / gaps.mean(), 1.1);
}

TEST(Arrival, MmppMeanRateBetweenBaseAndBurst)
{
    Rng rng(99);
    MmppArrivals mmpp(/*base=*/10.0, /*burst_mult=*/5.0,
                      /*base_dwell=*/10.0, /*burst_dwell=*/2.0);
    double t = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        t = mmpp.nextArrival(t, rng);
    double mean_rate = n / t;
    EXPECT_GT(mean_rate, 10.0);
    EXPECT_LT(mean_rate, 50.0);
}

TEST(Arrival, DiurnalRateCurveAndThinning)
{
    DiurnalArrivals diurnal(/*base=*/20.0, /*amplitude=*/0.5,
                            /*period=*/100.0);
    EXPECT_NEAR(diurnal.rateAt(0.0), 20.0, 1e-9);
    EXPECT_NEAR(diurnal.rateAt(25.0), 30.0, 1e-9); // peak at T/4
    EXPECT_NEAR(diurnal.rateAt(75.0), 10.0, 1e-9); // trough at 3T/4

    // Long-run average rate matches the base rate (sin averages out).
    Rng rng(5);
    double t = 0.0;
    const int n = 40000;
    for (int i = 0; i < n; ++i)
        t = diurnal.nextArrival(t, rng);
    EXPECT_NEAR(n / t, 20.0, 1.0);
}

TEST(Arrival, DiurnalWorkloadIsMonotone)
{
    WorkloadConfig cfg;
    cfg.kind = WorkloadKind::MultiAttNN;
    cfg.arrivalRate = 25.0;
    cfg.arrival.kind = ArrivalKind::Diurnal;
    cfg.numRequests = 500;
    auto reqs = generateWorkload(cfg, ctx().registry);
    for (size_t i = 1; i < reqs.size(); ++i)
        EXPECT_GE(reqs[i].arrival, reqs[i - 1].arrival);
}

TEST(Arrival, InvalidParametersAreFatal)
{
    ArrivalConfig cfg;
    EXPECT_EXIT(makeArrivalProcess(cfg, 0.0),
                ::testing::ExitedWithCode(1), "rate must be positive");
    cfg.kind = ArrivalKind::Mmpp;
    cfg.meanBurstDwell = 0.0;
    EXPECT_EXIT(makeArrivalProcess(cfg, 1.0),
                ::testing::ExitedWithCode(1), "dwell");
    cfg = ArrivalConfig{};
    cfg.kind = ArrivalKind::Diurnal;
    cfg.amplitude = 1.5;
    EXPECT_EXIT(makeArrivalProcess(cfg, 1.0),
                ::testing::ExitedWithCode(1), "amplitude");
}
