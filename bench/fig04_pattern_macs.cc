/**
 * @file
 * Fig. 4 reproduction: impact of the weight sparsity pattern on the
 * valid (effectual) MAC operations. For identical inputs and the
 * same overall sparsity ratio, point-wise random and channel-wise
 * pruning yield different valid-MAC distributions: channel pruning
 * keeps the channels whose activations fire most, shifting and
 * widening the distribution (up to ~40% difference in the paper).
 *
 * Configurations follow the paper: ResNet-50 at 95% sparsity,
 * MobileNet at 80%.
 *
 * Usage: fig04_pattern_macs [--samples N]
 */

#include <cstdio>
#include <vector>

#include "exp/experiments.hh"
#include "models/zoo.hh"
#include "sparsity/activation_model.hh"
#include "sparsity/weight_sparsity.hh"
#include "util/args.hh"
#include "util/histogram.hh"
#include "util/stats.hh"
#include "util/table.hh"

using namespace dysta;

namespace {

/** Whole-network valid MACs for one sample under one pattern. */
double
validMacs(const SparsifiedModel& sparse,
          const CnnActivationSample& input, Rng& rng)
{
    double total = 0.0;
    const ModelDesc& model = sparse.model();
    for (size_t l = 0; l < model.layers.size(); ++l) {
        double frac = sparse.validMacFraction(
            l, input.inputDensity(l), rng);
        total += frac * static_cast<double>(model.layers[l].macs());
    }
    return total;
}

void
report(const std::string& name, double rate, int samples)
{
    ModelDesc model = makeModelByName(name);
    SparsifiedModel random_sp(model, SparsityPattern::RandomPointwise,
                              rate, 21);
    SparsifiedModel channel_sp(model, SparsityPattern::ChannelWise,
                               rate, 21);
    CnnActivationModel act(model, imagenetWithDarkProfile(), 13);

    // Identical inputs for both patterns (same sample stream).
    std::vector<double> rnd;
    std::vector<double> chn;
    Rng rng(4242);
    for (int i = 0; i < samples; ++i) {
        CnnActivationSample input = act.sample(rng);
        Rng r1 = rng.fork();
        Rng r2 = rng.fork();
        rnd.push_back(validMacs(random_sp, input, r1));
        chn.push_back(validMacs(channel_sp, input, r2));
    }

    // Normalize by the random-pattern mean, like the paper's x-axis.
    double base = mean(rnd);
    OnlineStats s_rnd;
    OnlineStats s_chn;
    Histogram h_rnd(0.7, 1.5, 24);
    Histogram h_chn(0.7, 1.5, 24);
    for (size_t i = 0; i < rnd.size(); ++i) {
        s_rnd.add(rnd[i] / base);
        s_chn.add(chn[i] / base);
        h_rnd.add(rnd[i] / base);
        h_chn.add(chn[i] / base);
    }

    std::printf("%s", h_rnd.render("Fig. 4 " + name +
                                   " random_sparse (normalized valid "
                                   "MACs)").c_str());
    std::printf("%s", h_chn.render("Fig. 4 " + name +
                                   " channel_sparse (normalized valid "
                                   "MACs)").c_str());

    AsciiTable t("Fig. 4 summary, " + name + " @ " +
                 AsciiTable::num(rate * 100, 0) + "% sparsity");
    t.setHeader({"pattern", "mean", "stddev", "mean shift vs random"});
    t.addRow({"random", AsciiTable::num(s_rnd.mean(), 3),
              AsciiTable::num(s_rnd.stddev(), 3), "-"});
    t.addRow({"channel", AsciiTable::num(s_chn.mean(), 3),
              AsciiTable::num(s_chn.stddev(), 3),
              AsciiTable::num((s_chn.mean() - s_rnd.mean()) * 100.0,
                              1) + "%"});
    t.print();
}

} // namespace

int
main(int argc, char** argv)
{
    ArgParser args("fig04_pattern_macs",
                   "Fig. 4 reproduction: effective MACs under the sparsity patterns.");
    args.addInt("--samples", 2000, "profiled samples");
    args.parse(argc, argv);
    int samples = args.getInt("--samples");
    report("resnet50", 0.95, samples);
    report("mobilenet", 0.80, samples);
    std::printf("Paper reference: different sparsity patterns "
                "introduce up to ~40%% difference in normalized "
                "valid MACs at the same sparsity ratio.\n");
    return 0;
}
