#include "sched/engine.hh"

#include <algorithm>

#include "util/logging.hh"

namespace dysta {

SchedulerEngine::SchedulerEngine(EngineConfig config)
    : cfg(config)
{
}

EngineResult
SchedulerEngine::run(std::vector<Request>& requests,
                     Scheduler& policy) const
{
    EngineResult result;
    policy.reset();

    for (auto& req : requests) {
        panicIf(req.trace == nullptr || req.trace->layers.empty(),
                "SchedulerEngine: request without a trace");
        req.nextLayer = 0;
        req.executedTime = 0.0;
        req.lastRunEnd = req.arrival;
        req.finishTime = -1.0;
        req.shed = false;
    }

    // Arrival order (stable on ties by id).
    std::vector<Request*> pending;
    pending.reserve(requests.size());
    for (auto& req : requests)
        pending.push_back(&req);
    std::stable_sort(pending.begin(), pending.end(),
                     [](const Request* a, const Request* b) {
                         if (a->arrival != b->arrival)
                             return a->arrival < b->arrival;
                         return a->id < b->id;
                     });

    std::vector<Request*> ready;
    std::vector<const Request*> ready_view;
    size_t next_arrival = 0;
    size_t completed = 0;
    double now = 0.0;

    auto admitUpTo = [&](double time) {
        while (next_arrival < pending.size() &&
               pending[next_arrival]->arrival <= time) {
            Request* req = pending[next_arrival++];
            ready.push_back(req);
            policy.onArrival(*req, time);
        }
    };

    const Request* last_running = nullptr;

    while (completed < requests.size()) {
        if (ready.empty()) {
            panicIf(next_arrival >= pending.size(),
                    "SchedulerEngine: idle with no pending arrivals");
            now = std::max(now, pending[next_arrival]->arrival);
            admitUpTo(now);
            continue;
        }

        ready_view.assign(ready.begin(), ready.end());
        size_t pick = policy.selectNext(ready_view, now);
        ++result.decisions;
        panicIf(pick >= ready.size(),
                "SchedulerEngine: scheduler returned invalid index");
        Request* running = ready[pick];

        if (last_running != nullptr && running != last_running &&
            last_running->nextLayer > 0 && !last_running->done()) {
            ++result.preemptions;
        }

        now += cfg.decisionOverheadSec;

        // Execute one non-preemptible block of layers. The monitor
        // fires per layer; the next dispatch decision happens at the
        // block boundary.
        size_t block = std::max<size_t>(1, cfg.layerBlockSize);
        for (size_t k = 0; k < block && !running->done(); ++k) {
            const LayerTrace& layer = running->trace->layers[
                running->nextLayer];
            double start = now;
            now += layer.latency;
            running->executedTime += layer.latency;
            size_t layer_idx = running->nextLayer;
            ++running->nextLayer;
            running->lastRunEnd = now;

            if (cfg.recordEvents) {
                result.events.push_back(
                    {running->id, layer_idx, start, now});
            }

            // Arrivals that happened while the layer ran join the
            // queue before the next decision.
            admitUpTo(now);

            policy.onLayerComplete(*running, now,
                                   layer.monitoredSparsity);
        }

        if (running->done()) {
            running->finishTime = now;
            policy.onComplete(*running, now);
            ready.erase(std::find(ready.begin(), ready.end(), running));
            ++completed;
            last_running = nullptr;
        } else {
            last_running = running;
        }
    }

    result.metrics = computeMetrics(requests);
    return result;
}

} // namespace dysta
