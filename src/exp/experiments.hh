/**
 * @file
 * Shared experiment harness for the bench binaries and examples:
 * builds the Phase-1 trace pools, constructs schedulers by name, runs
 * seeded workloads and averages metrics — the glue of Fig. 7.
 */

#ifndef DYSTA_EXP_EXPERIMENTS_HH
#define DYSTA_EXP_EXPERIMENTS_HH

#include <memory>
#include <string>
#include <vector>

#include "accel/eyeriss_v2.hh"
#include "accel/sanger.hh"
#include "core/dysta.hh"
#include "sched/engine.hh"
#include "serve/cluster_engine.hh"
#include "workload/workload.hh"

namespace dysta {

/** Everything a scheduling experiment needs, built once. */
struct BenchContext
{
    EyerissV2Model eyeriss;
    SangerModel sanger;
    TraceRegistry registry;
    ModelInfoLut lut;
    /** Architectures of every profiled model (for the HW scheduler). */
    std::vector<ModelDesc> models;

    BenchContext() = default;
    BenchContext(const BenchContext&) = delete;
    BenchContext& operator=(const BenchContext&) = delete;
};

/** Phase-1 setup knobs. */
struct BenchSetup
{
    int samplesPerModel = 300;
    uint64_t seed = 7;
    double cnnSparsityRate = 0.6;
    bool includeAttnn = true;
    bool includeCnn = true;
    /**
     * Hardware configuration of the reference accelerators the
     * Phase-1 profile runs on. Per-node fleet mixes (NodeProfile
     * speed factors) are relative to these, so they parameterize
     * the traces themselves and are part of the cache fingerprint.
     */
    SangerConfig sangerHw;
    EyerissV2Config eyerissHw;
};

/**
 * Stable one-line fingerprint of a BenchSetup plus the trace format
 * version — the trace cache's manifest content. Any field change,
 * including the reference accelerator hardware configuration,
 * invalidates a cached Phase-1 profile.
 */
std::string benchSetupFingerprint(const BenchSetup& setup);

/** Profile all benchmark models and build the LUT. */
std::unique_ptr<BenchContext> makeBenchContext(BenchSetup setup = {});

/**
 * Like makeBenchContext, but persists the Phase-1 traces through a
 * setup-keyed cache directory (the bench binaries' `--trace-cache`):
 * when `<dir>/manifest.txt` matches benchSetupFingerprint(setup) the
 * registry is loaded from the saved CSVs instead of re-profiling;
 * otherwise the profile runs cold and the cache (traces + manifest)
 * is rewritten. An empty `trace_cache_dir` always profiles cold.
 */
std::unique_ptr<BenchContext>
makeBenchContext(BenchSetup setup, const std::string& trace_cache_dir);

/** Baseline scheduler names in the paper's Table 5 order. */
std::vector<std::string> table5Schedulers();

/** All registered scheduler names (PolicyRegistry::global()). */
std::vector<std::string> allSchedulers();

/**
 * Construct a scheduler from a PolicyRegistry spec, e.g. "Dysta" or
 * "dysta:eta=0.1,beta=0.25". Dysta and Oracle default to the
 * per-scenario tuned eta. fatal() on unknown names, listing the
 * valid ones.
 */
std::unique_ptr<Scheduler>
makeSchedulerByName(const std::string& spec, const BenchContext& ctx,
                    WorkloadKind kind = WorkloadKind::MultiAttNN);

/** Run one generated workload under one policy. */
EngineResult runOne(const BenchContext& ctx,
                    const WorkloadConfig& workload, Scheduler& policy);

/**
 * Run `num_seeds` workloads (seeds workload.seed, +1, ...) and return
 * field-wise averaged metrics, as the paper reports.
 */
Metrics runAveraged(const BenchContext& ctx, WorkloadConfig workload,
                    const std::string& scheduler_name, int num_seeds);

/** All registered dispatcher names (PolicyRegistry::global()). */
std::vector<std::string> allDispatchers();

/**
 * Construct a dispatcher from a PolicyRegistry spec, e.g.
 * "least-backlog" or "work-stealing:ratio=4" (`steal_cfg` provides
 * the base work-stealing thresholds spec parameters override).
 * fatal() on unknown names, listing the valid ones.
 */
std::unique_ptr<Dispatcher>
makeDispatcherByName(const std::string& spec, const BenchContext& ctx,
                     WorkStealingConfig steal_cfg = {});

/** Cluster-run knobs layered on top of a workload. */
struct ClusterRunConfig
{
    /** Homogeneous fleet size (ignored when `nodes` is non-empty). */
    size_t numNodes = 4;
    /** Explicit (possibly heterogeneous) node profiles. */
    std::vector<NodeProfile> nodes;
    /** Front-end placement policy name. */
    std::string dispatcher = "least-backlog";
    /** Per-node scheduling policy name (see makeSchedulerByName). */
    std::string nodeScheduler = "Dysta";
    /** Front-door SLO-aware load shedding. */
    AdmissionConfig admission;
    /**
     * Admission-estimator spec override, e.g. "lut" or
     * "dysta:alpha=0.9" (PolicyRegistry); "" keeps the engine
     * default.
     */
    std::string admissionEstimator;
    /** Scheduled drain/fail/recover transitions. */
    std::vector<NodeEvent> nodeEvents;
    /** Fate of started requests displaced by a node failure. */
    RestartPolicy onFailure = RestartPolicy::Restart;
    /** Thresholds for the work-stealing dispatcher. */
    WorkStealingConfig stealing;
    /** Optional telemetry sink (not owned; see SimConfig). */
    Telemetry* telemetry = nullptr;
    /**
     * Generate requests lazily through a WorkloadArrivalSource
     * instead of materializing the whole workload vector: memory
     * stays bounded by the in-flight set, the schedule stays
     * bit-identical for the same seed.
     */
    bool streaming = false;
    /** Calendar implementation (see SimConfig::calendar). */
    CalendarKind calendar = CalendarKind::Heap;
    /** Streaming-mode metrics accumulation (see SimConfig). */
    MetricsKind metricsKind = MetricsKind::Exact;

    // --- chaos engine (src/chaos/) -----------------------------------
    /**
     * Failure-process spec, e.g. "mtbf:up=exp@100,down=exp@5" or
     * "mtbf:up=weibull@200:1.5,down=fixed@10,scope=domain"
     * (PolicyRegistry); "" disables fault injection. The process is
     * constructed per run and seeded from the workload seed, so
     * chaos-off runs stay bit-identical to a build without it.
     */
    std::string chaos;
    /** Retry-policy spec, e.g. "retry:max=3,backoff=2"; "" = off. */
    std::string retry;
    /** Hedging spec, e.g. "hedge:quantile=0.95"; "" = off. */
    std::string hedge;
    /** Brown-out spec, e.g. "brownout:step=0.5"; "" = off. */
    std::string brownout;
    /** Tier weights, e.g. "0.6,0.3,0.1"; "" = single tier. */
    std::string tiers;

    // --- dynamic batching (src/batch/) -------------------------------
    /**
     * Batch-formation spec, e.g.
     * "batcher:size=8,delay=2ms,compose=sparsity"; "" = off (runs
     * bit-identical to a build without the subsystem).
     */
    std::string batcher;
};

/** Generate one workload and serve it on a simulated cluster. */
ClusterResult runCluster(const BenchContext& ctx,
                         const WorkloadConfig& workload,
                         const ClusterRunConfig& cluster);

} // namespace dysta

#endif // DYSTA_EXP_EXPERIMENTS_HH
