#include "util/rng.hh"

#include <cmath>

#include "util/logging.hh"

namespace dysta {

namespace {

uint64_t
splitmix64(uint64_t& x)
{
    x += 0x9E3779B97F4A7C15ULL;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
}

uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(uint64_t seed)
{
    uint64_t sm = seed;
    for (auto& word : s)
        word = splitmix64(sm);
}

uint64_t
Rng::next()
{
    const uint64_t result = rotl(s[1] * 5, 7) * 9;
    const uint64_t t = s[1] << 17;

    s[2] ^= s[0];
    s[3] ^= s[1];
    s[1] ^= s[2];
    s[0] ^= s[3];
    s[2] ^= t;
    s[3] = rotl(s[3], 45);

    return result;
}

double
Rng::uniform()
{
    // Top 53 bits give a uniform double in [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

int64_t
Rng::uniformInt(int64_t lo, int64_t hi)
{
    panicIf(lo > hi, "uniformInt: lo > hi");
    uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
    return lo + static_cast<int64_t>(next() % span);
}

double
Rng::normal()
{
    if (haveCachedNormal) {
        haveCachedNormal = false;
        return cachedNormal;
    }
    double u1 = 0.0;
    do {
        u1 = uniform();
    } while (u1 <= 0.0);
    double u2 = uniform();
    double r = std::sqrt(-2.0 * std::log(u1));
    double theta = 2.0 * M_PI * u2;
    cachedNormal = r * std::sin(theta);
    haveCachedNormal = true;
    return r * std::cos(theta);
}

double
Rng::normal(double mean, double stddev)
{
    return mean + stddev * normal();
}

double
Rng::clampedNormal(double mean, double stddev, double lo, double hi)
{
    double v = normal(mean, stddev);
    if (v < lo)
        return lo;
    if (v > hi)
        return hi;
    return v;
}

double
Rng::exponential(double rate)
{
    panicIf(rate <= 0.0, "exponential: rate must be positive");
    double u = 0.0;
    do {
        u = uniform();
    } while (u <= 0.0);
    return -std::log(u) / rate;
}

uint64_t
Rng::poisson(double mean)
{
    panicIf(mean < 0.0, "poisson: mean must be non-negative");
    if (mean == 0.0)
        return 0;
    if (mean < 30.0) {
        // Knuth's product method for small means.
        double l = std::exp(-mean);
        uint64_t k = 0;
        double p = 1.0;
        do {
            ++k;
            p *= uniform();
        } while (p > l);
        return k - 1;
    }
    // Normal approximation for large means.
    double v = normal(mean, std::sqrt(mean));
    return v < 0.0 ? 0 : static_cast<uint64_t>(v + 0.5);
}

double
Rng::logNormal(double mu, double sigma)
{
    return std::exp(normal(mu, sigma));
}

bool
Rng::bernoulli(double p)
{
    return uniform() < p;
}

size_t
Rng::weightedIndex(const std::vector<double>& weights)
{
    panicIf(weights.empty(), "weightedIndex: empty weights");
    double total = 0.0;
    for (double w : weights) {
        panicIf(w < 0.0, "weightedIndex: negative weight");
        total += w;
    }
    panicIf(total <= 0.0, "weightedIndex: weights sum to zero");
    double r = uniform() * total;
    double acc = 0.0;
    for (size_t i = 0; i < weights.size(); ++i) {
        acc += weights[i];
        if (r < acc)
            return i;
    }
    return weights.size() - 1;
}

Rng
Rng::fork()
{
    return Rng(next());
}

} // namespace dysta
