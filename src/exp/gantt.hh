/**
 * @file
 * ASCII Gantt renderer for engine schedule events: one row per
 * request, time bucketed into fixed-width columns, '#' where the
 * request holds the accelerator. Makes preemption behaviour visible
 * in examples and debugging sessions.
 */

#ifndef DYSTA_EXP_GANTT_HH
#define DYSTA_EXP_GANTT_HH

#include <string>
#include <vector>

#include "sched/engine.hh"

namespace dysta {

/** Gantt rendering options. */
struct GanttConfig
{
    /** Chart width in character columns. */
    size_t columns = 72;
    /** Start of the rendered window (seconds). */
    double windowStart = 0.0;
    /** End of the window; <= start means "until the last event". */
    double windowEnd = 0.0;
    /** Maximum number of request rows (longest-running first). */
    size_t maxRows = 24;
};

/**
 * Render schedule events as an ASCII Gantt chart.
 * @param events   engine events (EngineConfig::recordEvents)
 * @param requests the requests the events refer to (for labels)
 */
std::string renderGantt(const std::vector<ScheduleEvent>& events,
                        const std::vector<Request>& requests,
                        GanttConfig config = {});

} // namespace dysta

#endif // DYSTA_EXP_GANTT_HH
