#include "models/model.hh"

#include "util/logging.hh"

namespace dysta {

std::string
toString(ModelFamily family)
{
    switch (family) {
      case ModelFamily::CNN: return "CNN";
      case ModelFamily::AttNN: return "AttNN";
    }
    panic("toString: unknown ModelFamily");
}

std::string
toString(Scenario scenario)
{
    switch (scenario) {
      case Scenario::DataCenter: return "DataCenter";
      case Scenario::MobilePhone: return "MobilePhone";
      case Scenario::ARVRWearable: return "ARVRWearable";
    }
    panic("toString: unknown Scenario");
}

uint64_t
ModelDesc::totalMacs(int seq_len) const
{
    uint64_t total = 0;
    for (const auto& layer : layers)
        total += layer.macs(seq_len);
    return total;
}

uint64_t
ModelDesc::totalWeights() const
{
    uint64_t total = 0;
    for (const auto& layer : layers)
        total += layer.weightCount();
    return total;
}

} // namespace dysta
