#include "api/report.hh"

#include <cstdio>

#include "obs/telemetry.hh"
#include "util/csv.hh"
#include "util/json.hh"
#include "util/logging.hh"
#include "util/parse.hh"
#include "util/table.hh"

namespace dysta {

Reporter::Reporter(std::string tool_name) : tool(std::move(tool_name)) {}

void
Reporter::meta(const std::string& key, const std::string& value)
{
    Value v;
    v.kind = Value::Kind::Str;
    v.str = value;
    metaFields.emplace_back(key, std::move(v));
}

void
Reporter::meta(const std::string& key, int value)
{
    Value v;
    v.kind = Value::Kind::Int;
    v.integer = value;
    metaFields.emplace_back(key, std::move(v));
}

void
Reporter::meta(const std::string& key, double value)
{
    Value v;
    v.kind = Value::Kind::Num;
    v.num = value;
    metaFields.emplace_back(key, std::move(v));
}

void
Reporter::scalar(const std::string& key, double value)
{
    Value v;
    v.kind = Value::Kind::Num;
    v.num = value;
    scalars.emplace_back(key, std::move(v));
}

void
Reporter::scalar(const std::string& key, int64_t value)
{
    Value v;
    v.kind = Value::Kind::Int;
    v.integer = value;
    scalars.emplace_back(key, std::move(v));
}

void
Reporter::scalar(const std::string& key, bool value)
{
    Value v;
    v.kind = Value::Kind::Bool;
    v.boolean = value;
    scalars.emplace_back(key, std::move(v));
}

void
Reporter::scalar(const std::string& key, const std::string& value)
{
    Value v;
    v.kind = Value::Kind::Str;
    v.str = value;
    scalars.emplace_back(key, std::move(v));
}

void
Reporter::add(const ScenarioResult& result)
{
    runs.push_back(result);
}

namespace {

void
writeRow(JsonWriter& json, const ScenarioRow& row)
{
    json.beginObject();
    json.field("workload", row.workload);
    json.field("arrival", row.arrival);
    json.field("slo", row.slo);
    json.field("fleet", row.fleet);
    json.field("dispatcher", row.dispatcher);
    json.field("admission_margin", row.admissionMargin);
    json.field("steal_ratio", row.stealRatio);
    // Emitted only when the grid has a chaos axis, so reports from
    // chaos-free scenarios stay byte-identical to older runs.
    if (!row.chaos.empty())
        json.field("chaos", row.chaos);
    // Likewise emitted only when the grid has a batcher axis.
    if (!row.batcher.empty())
        json.field("batcher", row.batcher);
    json.field("scheduler", row.scheduler);
    const Metrics& m = row.metrics;
    json.field("antt", m.antt);
    json.field("violation_rate", m.violationRate);
    json.field("slo_miss_rate", m.sloMissRate);
    json.field("throughput", m.throughput);
    json.field("goodput", m.goodput);
    json.field("stp", m.stp);
    json.field("p50_turnaround", m.p50Turnaround);
    json.field("p95_turnaround", m.p95Turnaround);
    json.field("p99_turnaround", m.p99Turnaround);
    json.field("p50_latency", m.p50Latency);
    json.field("p95_latency", m.p95Latency);
    json.field("p99_latency", m.p99Latency);
    json.field("completed", static_cast<uint64_t>(m.completed));
    json.field("shed", static_cast<uint64_t>(m.shed));
    json.field("makespan", m.makespan);
    json.field("decisions", row.decisions);
    json.field("preemptions", row.preemptions);
    if (!m.estimators.empty()) {
        json.beginArray("estimators");
        for (const EstimatorAccuracy& est : m.estimators) {
            json.beginObject();
            json.field("estimator", est.estimator);
            json.field("samples", est.samples);
            json.field("bias", est.bias);
            json.field("rmse", est.rmse);
            json.field("isolated_samples", est.isolatedSamples);
            json.field("isolated_bias", est.isolatedBias);
            json.field("isolated_rmse", est.isolatedRmse);
            json.endObject();
        }
        json.endArray();
    }
    // Resilience block only when a chaos-engine mechanism ran
    // (fault injection, retries, hedging, brown-out or tiers).
    if (m.resilience.active) {
        const ResilienceStats& res = m.resilience;
        json.beginObject("resilience");
        json.field("availability", res.availability);
        json.field("mttr", res.mttr);
        json.field("failures", res.failures);
        json.field("timeouts", res.timeouts);
        json.field("retries", res.retries);
        json.field("retry_amplification", res.retryAmplification);
        json.field("hedges", res.hedges);
        json.field("hedge_wins", res.hedgeWins);
        json.field("hedge_win_rate", res.hedgeWinRate);
        json.field("brownout_sheds", res.brownoutSheds);
        if (!res.tiers.empty()) {
            json.beginArray("tiers");
            for (const TierStats& tier : res.tiers) {
                json.beginObject();
                json.field("completed", tier.completed);
                json.field("violations", tier.violations);
                json.field("shed", tier.shed);
                json.field("goodput", tier.goodput);
                json.endObject();
            }
            json.endArray();
        }
        json.endObject();
    }
    // Batching block only when batch formation ran.
    if (m.batching.active) {
        const BatchStats& bat = m.batching;
        json.beginObject("batching");
        json.field("formed", bat.formed);
        json.field("joins", bat.joins);
        json.field("steps", bat.steps);
        json.field("mean_occupancy", bat.meanOccupancy);
        json.field("mean_fill_wait", bat.meanFillWaitSec);
        json.field("straggler_tax", bat.stragglerTaxSec);
        json.endObject();
    }
    json.endObject();
}

} // namespace

std::string
Reporter::json() const
{
    JsonWriter json;
    json.beginObject();
    json.field("tool", tool);

    json.beginObject("meta");
    for (const auto& [key, value] : metaFields) {
        switch (value.kind) {
          case Value::Kind::Str: json.field(key, value.str); break;
          case Value::Kind::Num: json.field(key, value.num); break;
          case Value::Kind::Int:
            json.field(key, value.integer);
            break;
          case Value::Kind::Bool:
            json.field(key, value.boolean);
            break;
        }
    }
    json.endObject();

    for (const auto& [key, value] : scalars) {
        switch (value.kind) {
          case Value::Kind::Str: json.field(key, value.str); break;
          case Value::Kind::Num: json.field(key, value.num); break;
          case Value::Kind::Int:
            json.field(key, value.integer);
            break;
          case Value::Kind::Bool:
            json.field(key, value.boolean);
            break;
        }
    }

    json.beginArray("scenarios");
    for (const ScenarioResult& run : runs) {
        json.beginObject();
        json.field("name", run.spec.name);
        json.field("spec", serializeScenario(run.spec));
        json.beginArray("rows");
        for (const ScenarioRow& row : run.rows)
            writeRow(json, row);
        json.endArray();
        json.endObject();
    }
    json.endArray();

    json.endObject();
    return json.str();
}

void
Reporter::writeJson(const std::string& path) const
{
    std::string document = json();
    std::FILE* out = std::fopen(path.c_str(), "w");
    fatalIf(out == nullptr, "Reporter: cannot write '" + path + "'");
    bool ok =
        std::fwrite(document.data(), 1, document.size(), out) ==
            document.size() &&
        std::fputc('\n', out) != EOF;
    ok = std::fclose(out) == 0 && ok;
    fatalIf(!ok, "Reporter: short write to '" + path + "'");
    // detlint-allow(stdout-print): Reporter is the CLI presentation
    // layer; the wrote-file note is user-facing progress output
    std::printf("Wrote %s\n", path.c_str());
}

void
Reporter::writeCsv(const std::string& path) const
{
    // Union of probe names across all rows, first-appearance order,
    // so heterogeneous scenarios share one header.
    std::vector<std::string> probes;
    for (const ScenarioResult& run : runs) {
        for (const ScenarioRow& row : run.rows) {
            for (const EstimatorAccuracy& est :
                 row.metrics.estimators) {
                bool known = false;
                for (const std::string& name : probes)
                    known = known || name == est.estimator;
                if (!known)
                    probes.push_back(est.estimator);
            }
        }
    }

    // Resilience columns appear only when some row ran a chaos
    // mechanism, keeping chaos-free CSVs byte-identical; batching
    // columns follow the same rule.
    bool any_resilience = false;
    bool any_batch = false;
    for (const ScenarioResult& run : runs) {
        for (const ScenarioRow& row : run.rows) {
            any_resilience =
                any_resilience || row.metrics.resilience.active;
            any_batch = any_batch || row.metrics.batching.active;
        }
    }

    CsvWriter csv(path);
    std::vector<std::string> header = {
        "scenario",       "workload",       "arrival",
        "slo",            "fleet",          "dispatcher",
        "admission_margin", "steal_ratio",
        "scheduler",      "antt",           "violation_rate",
        "slo_miss_rate",  "throughput",     "goodput",
        "stp",
        "p50_turnaround", "p95_turnaround", "p99_turnaround",
        "p50_latency",    "p95_latency",    "p99_latency",
        "completed",      "shed",           "makespan",
        "decisions",      "preemptions",
    };
    if (any_resilience) {
        header.insert(header.begin() + 8, "chaos");
        header.insert(header.end(),
                      {"availability", "mttr", "failures",
                       "timeouts", "retries", "retry_amplification",
                       "hedges", "hedge_wins", "hedge_win_rate",
                       "brownout_sheds"});
    }
    if (any_batch) {
        // After steal_ratio (and chaos when present), before
        // scheduler — the same slot the JSON rows use.
        header.insert(header.begin() + (any_resilience ? 9 : 8),
                      "batcher");
        header.insert(header.end(),
                      {"batch_formed", "batch_joins", "batch_steps",
                       "batch_occupancy", "batch_fill_wait",
                       "batch_straggler_tax"});
    }
    for (const std::string& name : probes) {
        header.push_back("est_" + name + "_bias");
        header.push_back("est_" + name + "_rmse");
    }
    csv.writeRow(header);

    for (const ScenarioResult& run : runs) {
        for (const ScenarioRow& row : run.rows) {
            const Metrics& m = row.metrics;
            std::vector<std::string> cells = {
                run.spec.name,
                row.workload,
                row.arrival,
                jsonNumber(row.slo),
                row.fleet,
                row.dispatcher,
                jsonNumber(row.admissionMargin),
                jsonNumber(row.stealRatio),
                row.scheduler,
                jsonNumber(m.antt),
            };
            if (any_resilience)
                cells.insert(cells.begin() + 8, row.chaos);
            if (any_batch)
                cells.insert(cells.begin() +
                                 (any_resilience ? 9 : 8),
                             row.batcher);
            std::vector<std::string> tail = {
                jsonNumber(m.violationRate),
                jsonNumber(m.sloMissRate),
                jsonNumber(m.throughput),
                jsonNumber(m.goodput),
                jsonNumber(m.stp),
                jsonNumber(m.p50Turnaround),
                jsonNumber(m.p95Turnaround),
                jsonNumber(m.p99Turnaround),
                jsonNumber(m.p50Latency),
                jsonNumber(m.p95Latency),
                jsonNumber(m.p99Latency),
                std::to_string(m.completed),
                std::to_string(m.shed),
                jsonNumber(m.makespan),
                jsonNumber(row.decisions),
                jsonNumber(row.preemptions),
            };
            cells.insert(cells.end(), tail.begin(), tail.end());
            if (any_resilience) {
                const ResilienceStats& res = m.resilience;
                // Rows of a chaos-free scenario sharing the file
                // leave the resilience columns empty.
                std::vector<std::string> extra(10, "");
                if (res.active) {
                    extra = {jsonNumber(res.availability),
                             jsonNumber(res.mttr),
                             jsonNumber(res.failures),
                             jsonNumber(res.timeouts),
                             jsonNumber(res.retries),
                             jsonNumber(res.retryAmplification),
                             jsonNumber(res.hedges),
                             jsonNumber(res.hedgeWins),
                             jsonNumber(res.hedgeWinRate),
                             jsonNumber(res.brownoutSheds)};
                }
                cells.insert(cells.end(), extra.begin(),
                             extra.end());
            }
            if (any_batch) {
                const BatchStats& bat = m.batching;
                // Unbatched rows sharing the file leave the batch
                // columns empty.
                std::vector<std::string> extra(6, "");
                if (bat.active) {
                    extra = {jsonNumber(bat.formed),
                             jsonNumber(bat.joins),
                             jsonNumber(bat.steps),
                             jsonNumber(bat.meanOccupancy),
                             jsonNumber(bat.meanFillWaitSec),
                             jsonNumber(bat.stragglerTaxSec)};
                }
                cells.insert(cells.end(), extra.begin(),
                             extra.end());
            }
            for (const std::string& name : probes) {
                const EstimatorAccuracy* found = nullptr;
                for (const EstimatorAccuracy& est : m.estimators)
                    if (est.estimator == name)
                        found = &est;
                cells.push_back(found ? jsonNumber(found->bias) : "");
                cells.push_back(found ? jsonNumber(found->rmse) : "");
            }
            csv.writeRow(cells);
        }
    }
    csv.close();
    // detlint-allow(stdout-print): Reporter presentation layer, as above
    std::printf("Wrote %s\n", path.c_str());
}

void
Reporter::printTables() const
{
    for (const ScenarioResult& run : runs)
        printScenarioTable(run);
}

namespace {

template <typename Fn>
bool
multiValued(const std::vector<ScenarioRow>& rows, Fn get)
{
    for (const ScenarioRow& row : rows) {
        if (get(row) != get(rows.front()))
            return true;
    }
    return false;
}

} // namespace

void
printScenarioTable(const ScenarioResult& result)
{
    if (result.rows.empty()) {
        // detlint-allow(stdout-print): result tables are the CLI's
        // primary output; this is the empty-table stand-in
        std::printf("scenario '%s': no result rows\n",
                    result.spec.name.c_str());
        return;
    }
    const ScenarioSpec& spec = result.spec;
    const std::vector<ScenarioRow>& rows = result.rows;

    // Elide single-valued axis columns; their value is in the title.
    bool show_workload = multiValued(
        rows, [](const ScenarioRow& r) { return r.workload; });
    bool show_arrival = multiValued(
        rows, [](const ScenarioRow& r) { return r.arrival; });
    bool show_slo =
        multiValued(rows, [](const ScenarioRow& r) { return r.slo; });
    bool show_fleet = spec.cluster() &&
        multiValued(rows,
                    [](const ScenarioRow& r) { return r.fleet; });
    bool show_dispatcher = spec.cluster();
    bool show_margin = multiValued(
        rows,
        [](const ScenarioRow& r) { return r.admissionMargin; });
    bool show_steal = multiValued(
        rows, [](const ScenarioRow& r) { return r.stealRatio; });
    bool show_chaos = multiValued(
        rows, [](const ScenarioRow& r) { return r.chaos; });
    bool show_batcher = multiValued(
        rows, [](const ScenarioRow& r) { return r.batcher; });
    bool any_shed = false;
    bool any_resilience = false;
    bool any_batch = false;
    for (const ScenarioRow& row : rows) {
        any_shed = any_shed || row.metrics.shed > 0;
        any_resilience =
            any_resilience || row.metrics.resilience.active;
        any_batch = any_batch || row.metrics.batching.active;
    }

    std::string title = "scenario '" + spec.name + "' (" +
                        std::to_string(spec.requests) + " requests x " +
                        std::to_string(spec.seeds) + " seed" +
                        (spec.seeds > 1 ? "s" : "");
    if (!show_workload)
        title += ", " + rows.front().workload;
    if (!show_arrival)
        title += ", " + rows.front().arrival;
    if (!show_slo)
        title += ", M_slo=" + shortestDouble(rows.front().slo) + "x";
    if (spec.cluster() && !show_fleet)
        title += ", fleet " + rows.front().fleet;
    if (!show_chaos && !rows.front().chaos.empty())
        title += ", chaos " + rows.front().chaos;
    if (!show_batcher && !rows.front().batcher.empty())
        title += ", batcher " + rows.front().batcher;
    title += ")";

    AsciiTable table(title);
    std::vector<std::string> header;
    if (show_workload)
        header.push_back("workload");
    if (show_arrival)
        header.push_back("arrival");
    if (show_slo)
        header.push_back("slo");
    if (show_fleet)
        header.push_back("fleet");
    if (show_dispatcher)
        header.push_back("dispatcher");
    if (show_margin)
        header.push_back("margin");
    if (show_steal)
        header.push_back("steal");
    if (show_chaos)
        header.push_back("chaos");
    if (show_batcher)
        header.push_back("batcher");
    header.push_back("scheduler");
    header.insert(header.end(),
                  {"ANTT", "violation [%]", "slo miss [%]",
                   "throughput", "goodput", "p99 lat [ms]"});
    if (any_shed)
        header.push_back("shed");
    if (any_resilience)
        header.insert(header.end(), {"avail [%]", "retries",
                                     "hedge win [%]"});
    if (any_batch)
        header.insert(header.end(), {"occupancy", "fill wait [ms]",
                                     "straggler [s]"});
    // Estimator accuracy probes, when the scenario ran any.
    const std::vector<EstimatorAccuracy>& probes =
        rows.front().metrics.estimators;
    for (const EstimatorAccuracy& est : probes)
        header.push_back("rmse " + est.estimator + " [ms]");
    table.setHeader(header);

    for (const ScenarioRow& row : rows) {
        std::vector<std::string> cells;
        if (show_workload)
            cells.push_back(row.workload);
        if (show_arrival)
            cells.push_back(row.arrival);
        if (show_slo)
            cells.push_back(shortestDouble(row.slo));
        if (show_fleet)
            cells.push_back(row.fleet);
        if (show_dispatcher)
            cells.push_back(row.dispatcher);
        if (show_margin)
            cells.push_back(shortestDouble(row.admissionMargin));
        if (show_steal)
            cells.push_back(row.stealRatio < 0.0
                                ? "default"
                                : shortestDouble(row.stealRatio));
        if (show_chaos)
            cells.push_back(row.chaos.empty() ? "none" : row.chaos);
        if (show_batcher)
            cells.push_back(row.batcher.empty() ? "none"
                                                : row.batcher);
        cells.push_back(row.scheduler);
        const Metrics& m = row.metrics;
        cells.push_back(AsciiTable::num(m.antt, 2));
        cells.push_back(AsciiTable::num(m.violationRate * 100.0, 1));
        cells.push_back(AsciiTable::num(m.sloMissRate * 100.0, 1));
        cells.push_back(AsciiTable::num(m.throughput, 2));
        cells.push_back(AsciiTable::num(m.goodput, 2));
        cells.push_back(AsciiTable::num(m.p99Latency * 1e3, 2));
        if (any_shed)
            cells.push_back(std::to_string(m.shed));
        if (any_resilience) {
            const ResilienceStats& res = m.resilience;
            if (res.active) {
                cells.push_back(
                    AsciiTable::num(res.availability * 100.0, 2));
                cells.push_back(AsciiTable::num(res.retries, 0));
                cells.push_back(
                    AsciiTable::num(res.hedgeWinRate * 100.0, 1));
            } else {
                cells.insert(cells.end(), {"-", "-", "-"});
            }
        }
        if (any_batch) {
            const BatchStats& bat = m.batching;
            if (bat.active) {
                cells.push_back(
                    AsciiTable::num(bat.meanOccupancy, 2));
                cells.push_back(
                    AsciiTable::num(bat.meanFillWaitSec * 1e3, 2));
                cells.push_back(
                    AsciiTable::num(bat.stragglerTaxSec, 3));
            } else {
                cells.insert(cells.end(), {"-", "-", "-"});
            }
        }
        for (const EstimatorAccuracy& probe : probes) {
            const EstimatorAccuracy* found = nullptr;
            for (const EstimatorAccuracy& est : m.estimators)
                if (est.estimator == probe.estimator)
                    found = &est;
            cells.push_back(
                found ? AsciiTable::num(found->rmse * 1e3, 2) : "-");
        }
        table.addRow(cells);
    }
    table.print();
}

void
printTelemetrySummary(const Telemetry& telemetry,
                      const std::vector<std::string>& node_names,
                      double makespan)
{
    if (makespan <= 0.0)
        makespan = telemetry.runEnd();

    // detlint-allow(stdout-print): telemetry summary is user-facing
    // CLI output requested via --gantt/--cell
    std::printf("telemetry: %zu arrivals, %zu dispatches, %zu shed, "
                "%zu completed; %zu migrations, %zu restarts, "
                "%zu preemptions\n",
                telemetry.arrivals(), telemetry.dispatches(),
                telemetry.sheds(), telemetry.completions(),
                telemetry.migrations(), telemetry.restarts(),
                telemetry.preemptionEvents());
    // detlint-allow(stdout-print): telemetry summary, see above
    std::printf("layers: %zu started = %zu completed + %zu abandoned "
                "(failures)\n",
                telemetry.execStarts(), telemetry.layerCompletions(),
                telemetry.abandonedLayers());
    if (telemetry.timeouts() + telemetry.retries() +
            telemetry.hedges() + telemetry.brownouts() >
        0) {
        // detlint-allow(stdout-print): telemetry summary, see above
        std::printf("chaos: %zu timeouts, %zu retries, %zu hedges "
                    "(%zu cancels), %zu brownout sheds\n",
                    telemetry.timeouts(), telemetry.retries(),
                    telemetry.hedges(), telemetry.hedgeCancels(),
                    telemetry.brownouts());
    }
    if (telemetry.batchesFormed() + telemetry.batchJoins() > 0) {
        // detlint-allow(stdout-print): telemetry summary, see above
        std::printf("batching: %zu batches formed, %zu continuous "
                    "joins\n",
                    telemetry.batchesFormed(),
                    telemetry.batchJoins());
    }

    const std::vector<NodeTelemetry>& nodes = telemetry.nodes();
    if (!nodes.empty()) {
        AsciiTable table("per-node telemetry (makespan " +
                         AsciiTable::num(makespan, 4) + "s)");
        table.setHeader({"node", "dispatched", "completed", "layers",
                         "preempt", "migr in/out", "fails",
                         "util [%]", "peak queue"});
        for (size_t i = 0; i < nodes.size(); ++i) {
            const NodeTelemetry& nt = nodes[i];
            std::string name =
                i < node_names.size() && !node_names[i].empty()
                    ? node_names[i]
                    : "node" + std::to_string(i);
            double util = makespan > 0.0
                              ? nt.busySec / makespan * 100.0
                              : 0.0;
            table.addRow(
                {name, std::to_string(nt.dispatched),
                 std::to_string(nt.completed),
                 std::to_string(nt.layersCompleted),
                 std::to_string(nt.preemptions),
                 std::to_string(nt.migratedIn) + "/" +
                     std::to_string(nt.migratedOut),
                 std::to_string(nt.fails), AsciiTable::num(util, 1),
                 std::to_string(nt.peakQueueDepth)});
        }
        table.print();
    }

    std::vector<EstimatorAccuracy> accuracy = telemetry.accuracy();
    if (!accuracy.empty()) {
        AsciiTable table("estimator accuracy (remaining-latency "
                         "residuals, reference-hardware ms)");
        table.setHeader({"estimator", "samples", "bias [ms]",
                         "rmse [ms]", "iso bias [ms]",
                         "iso rmse [ms]"});
        for (const EstimatorAccuracy& est : accuracy) {
            table.addRow({est.estimator,
                          AsciiTable::num(est.samples, 0),
                          AsciiTable::num(est.bias * 1e3, 3),
                          AsciiTable::num(est.rmse * 1e3, 3),
                          AsciiTable::num(est.isolatedBias * 1e3, 3),
                          AsciiTable::num(est.isolatedRmse * 1e3, 3)});
        }
        table.print();
    }
}

} // namespace dysta
