/**
 * @file
 * Fuzz harness for the ScenarioSpec key=value grammar
 * (src/api/scenario.cc), including the `include =` machinery.
 *
 * The harness runs chdir'd into a throwaway sandbox populated with a
 * small set of include fixtures (a valid base file, a two-file cycle,
 * a too-deep chain), so inputs containing `include = base.scn` or
 * `include = loop_a.scn` exercise resolution, cycle detection, and
 * the depth cap without ever touching real files. fatal() is routed
 * through FatalError (see util/logging.hh), so a parse *rejection* is
 * a graceful outcome; any other escape — panic(), a stray
 * std::exception, a signal — is a crash worth reporting.
 */

#include <sys/stat.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "api/scenario.hh"
#include "util/logging.hh"

namespace {

void
writeFixture(const char* name, const char* text)
{
    std::FILE* f = std::fopen(name, "w");
    if (f == nullptr) {
        std::perror(name);
        std::abort();
    }
    std::fputs(text, f);
    std::fclose(f);
}

/** Build the include sandbox and chdir into it. */
void
setupSandbox()
{
    char tmpl[] = "/tmp/sdysta_fuzz_scn.XXXXXX";
    if (mkdtemp(tmpl) == nullptr || chdir(tmpl) != 0) {
        std::perror("fuzz_scenario sandbox");
        std::abort();
    }
    writeFixture("base.scn",
                 "name = fuzz-base\n"
                 "workload = attnn\n"
                 "requests = 8\n"
                 "seed = 1\n");
    writeFixture("loop_a.scn", "include = loop_b.scn\n");
    writeFixture("loop_b.scn", "include = loop_a.scn\n");
    // chain_00 -> chain_01 -> ... -> chain_20: trips the depth cap.
    for (int i = 0; i < 21; ++i) {
        char name[32];
        std::snprintf(name, sizeof name, "chain_%02d.scn", i);
        char body[64];
        if (i < 20) {
            std::snprintf(body, sizeof body,
                          "include = chain_%02d.scn\n", i + 1);
        } else {
            std::snprintf(body, sizeof body, "name = deep\n");
        }
        writeFixture(name, body);
    }
}

} // namespace

extern "C" int
LLVMFuzzerInitialize(int* /*argc*/, char*** /*argv*/)
{
    setupSandbox();
    dysta::setFatalThrows(true);
    return 0;
}

extern "C" int
LLVMFuzzerTestOneInput(const uint8_t* data, size_t size)
{
    if (size > (1u << 16))
        return 0;
    std::string text(reinterpret_cast<const char*>(data), size);
    bool parsed = false;
    dysta::ScenarioSpec spec;
    try {
        spec = dysta::parseScenario(text);
        parsed = true;
    } catch (const dysta::FatalError&) {
        // Rejected input: the graceful outcome.
    }
    if (parsed) {
        // A spec that parses must also serialize and re-parse: the
        // round trip is the --emit-scenario contract. Rejection here
        // is a real bug, so escalate it to a crash.
        try {
            dysta::ScenarioSpec again =
                dysta::parseScenario(dysta::serializeScenario(spec));
            (void)again;
        } catch (const dysta::FatalError& err) {
            dysta::panic(std::string("scenario round-trip broke: ") +
                         err.what());
        }
    }
    return 0;
}
