/**
 * @file
 * Cluster front-end placement policies.
 *
 * The dispatcher assigns every arriving request to one accelerator
 * node; placement is final (no cross-node migration), matching the
 * cost of moving activations between accelerators. Three policies:
 *
 *  - round-robin: tenant-oblivious rotation;
 *  - least-outstanding: fewest queued-or-running requests;
 *  - least-backlog: smallest *estimated work* backlog, where each
 *    queued request's remaining latency comes from the ModelInfoLut
 *    refined by the monitored per-layer sparsity — the Sparse-DySta
 *    signal (Alg. 3) lifted from the node scheduler to cluster scope.
 *    Backlogs are normalized by node speed, so the policy also
 *    handles heterogeneous fleets.
 */

#ifndef DYSTA_SERVE_DISPATCHER_HH
#define DYSTA_SERVE_DISPATCHER_HH

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/latency_predictor.hh"
#include "core/model_info.hh"
#include "serve/node.hh"

namespace dysta {

/** Abstract front-end placement policy. */
class Dispatcher
{
  public:
    virtual ~Dispatcher() = default;

    /** Policy name as reported in result tables. */
    virtual std::string name() const = 0;

    /** Clear all per-run state (called before every cluster run). */
    virtual void reset() {}

    /**
     * Choose the node for an arriving request.
     * @param nodes all cluster nodes (non-empty)
     * @return index into `nodes`
     */
    virtual size_t
    selectNode(const Request& req,
               const std::vector<std::unique_ptr<ServeNode>>& nodes,
               double now) = 0;

    /**
     * A layer of `req` finished on `node`; the zero-count monitor
     * reported `monitored_sparsity` (negative when not captured).
     */
    virtual void
    onLayerComplete(const ServeNode& node, const Request& req,
                    double now, double monitored_sparsity)
    {
        (void)node;
        (void)req;
        (void)now;
        (void)monitored_sparsity;
    }

    /** `req` fully completed on `node` at `now`. */
    virtual void
    onComplete(const ServeNode& node, const Request& req, double now)
    {
        (void)node;
        (void)req;
        (void)now;
    }

    /**
     * Admission control shed `req` right after selectNode chose its
     * node: the placement never happened, so policies must roll back
     * any per-request side effects of the selection.
     */
    virtual void
    onShed(const Request& req, double now)
    {
        (void)req;
        (void)now;
    }
};

/** Tenant-oblivious rotation over the nodes. */
class RoundRobinDispatcher : public Dispatcher
{
  public:
    std::string name() const override { return "round-robin"; }
    void reset() override { next = 0; }

    size_t selectNode(
        const Request& req,
        const std::vector<std::unique_ptr<ServeNode>>& nodes,
        double now) override;

  private:
    /**
     * Monotone counter (reduced mod fleet size at use). A shed
     * request still consumes its rotation slot: rolling the pointer
     * back would pin it to an overloaded node and livelock the
     * front door while the rest of the fleet idles.
     */
    uint64_t next = 0;
};

/** Fewest outstanding (queued + running) requests; ties by node id. */
class LeastOutstandingDispatcher : public Dispatcher
{
  public:
    std::string name() const override { return "least-outstanding"; }

    size_t selectNode(
        const Request& req,
        const std::vector<std::unique_ptr<ServeNode>>& nodes,
        double now) override;
};

/**
 * Sparsity-aware least-estimated-backlog placement. Remaining
 * latencies of in-flight requests are LUT estimates scaled by each
 * request's online sparsity coefficient gamma (SparseLatencyPredictor,
 * Alg. 3); the arriving request goes to the node whose speed-
 * normalized backlog is smallest. Setting `sparsityAware` false
 * pins gamma to 1, giving the pure LUT-backlog ablation.
 */
class LeastBacklogDispatcher : public Dispatcher
{
  public:
    explicit LeastBacklogDispatcher(const ModelInfoLut& lut,
                                    PredictorConfig predictor_cfg = {},
                                    bool sparsity_aware = true);

    std::string name() const override;
    void reset() override;

    size_t selectNode(
        const Request& req,
        const std::vector<std::unique_ptr<ServeNode>>& nodes,
        double now) override;

    void onLayerComplete(const ServeNode& node, const Request& req,
                         double now,
                         double monitored_sparsity) override;

    void onComplete(const ServeNode& node, const Request& req,
                    double now) override;

    void onShed(const Request& req, double now) override;

    /**
     * Estimated seconds of sparsity-refined work queued on `node`,
     * normalized by its speed factor.
     */
    double backlogEstimate(const ServeNode& node) const;

    /** Refined remaining-latency estimate for one in-flight request. */
    double estRemaining(const Request& req) const;

  private:
    const ModelInfoLut* lut;
    PredictorConfig pcfg;
    bool sparsityAware;
    std::unordered_map<int, SparseLatencyPredictor> predictors;
};

} // namespace dysta

#endif // DYSTA_SERVE_DISPATCHER_HH
