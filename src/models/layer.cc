#include "models/layer.hh"

#include "util/logging.hh"

namespace dysta {

bool
isAttentionStage(LayerKind kind)
{
    return kind == LayerKind::AttnScore || kind == LayerKind::AttnContext;
}

std::string
toString(LayerKind kind)
{
    switch (kind) {
      case LayerKind::Conv: return "Conv";
      case LayerKind::DepthwiseConv: return "DepthwiseConv";
      case LayerKind::FullyConnected: return "FullyConnected";
      case LayerKind::TokenFC: return "TokenFC";
      case LayerKind::AttnScore: return "AttnScore";
      case LayerKind::AttnContext: return "AttnContext";
      case LayerKind::Pool: return "Pool";
    }
    panic("toString: unknown LayerKind");
}

uint64_t
LayerDesc::macs(int seq_len) const
{
    auto u = [](int v) { return static_cast<uint64_t>(v); };
    uint64_t kw = u(kernelW ? kernelW : kernel);
    switch (kind) {
      case LayerKind::Conv:
        return u(outChannels) * u(inChannels) * u(kernel) * kw *
               u(outH) * u(outW);
      case LayerKind::DepthwiseConv:
        // One filter per channel: inChannels == outChannels.
        return u(outChannels) * u(kernel) * kw * u(outH) * u(outW);
      case LayerKind::FullyConnected:
        return u(inFeatures) * u(outFeatures);
      case LayerKind::TokenFC:
        return u(seq_len) * u(inFeatures) * u(outFeatures);
      case LayerKind::AttnScore:
      case LayerKind::AttnContext:
        return u(heads) * u(seq_len) * u(seq_len) * u(headDim);
      case LayerKind::Pool:
        return 0;
    }
    panic("LayerDesc::macs: unknown LayerKind");
}

uint64_t
LayerDesc::weightCount() const
{
    auto u = [](int v) { return static_cast<uint64_t>(v); };
    uint64_t kw = u(kernelW ? kernelW : kernel);
    switch (kind) {
      case LayerKind::Conv:
        return u(outChannels) * u(inChannels) * u(kernel) * kw;
      case LayerKind::DepthwiseConv:
        return u(outChannels) * u(kernel) * kw;
      case LayerKind::FullyConnected:
      case LayerKind::TokenFC:
        return u(inFeatures) * u(outFeatures);
      case LayerKind::AttnScore:
      case LayerKind::AttnContext:
      case LayerKind::Pool:
        return 0;
    }
    panic("LayerDesc::weightCount: unknown LayerKind");
}

uint64_t
LayerDesc::inputElems(int seq_len) const
{
    auto u = [](int v) { return static_cast<uint64_t>(v); };
    switch (kind) {
      case LayerKind::Conv:
      case LayerKind::DepthwiseConv:
        // Input spatial size approximated from output and stride.
        return u(inChannels) * u(outH) * u(stride) * u(outW) * u(stride);
      case LayerKind::FullyConnected:
        return u(inFeatures);
      case LayerKind::TokenFC:
        return u(seq_len) * u(inFeatures);
      case LayerKind::AttnScore:
        // Q and K operands.
        return 2ULL * u(seq_len) * u(heads) * u(headDim);
      case LayerKind::AttnContext:
        // Attention matrix (sparse) plus V.
        return u(heads) * u(seq_len) * u(seq_len) +
               u(seq_len) * u(heads) * u(headDim);
      case LayerKind::Pool:
        return u(inChannels) * u(outH) * u(outW);
    }
    panic("LayerDesc::inputElems: unknown LayerKind");
}

uint64_t
LayerDesc::outputElems(int seq_len) const
{
    auto u = [](int v) { return static_cast<uint64_t>(v); };
    switch (kind) {
      case LayerKind::Conv:
      case LayerKind::DepthwiseConv:
      case LayerKind::Pool:
        return u(outChannels) * u(outH) * u(outW);
      case LayerKind::FullyConnected:
        return u(outFeatures);
      case LayerKind::TokenFC:
        return u(seq_len) * u(outFeatures);
      case LayerKind::AttnScore:
        return u(heads) * u(seq_len) * u(seq_len);
      case LayerKind::AttnContext:
        return u(seq_len) * u(heads) * u(headDim);
    }
    panic("LayerDesc::outputElems: unknown LayerKind");
}

} // namespace dysta
