/**
 * @file
 * One accelerator node of the serving cluster — compatibility facade.
 *
 * The per-node execution mechanics (ready queue, layer-granular
 * non-preemptible blocks, preemption/decision counting) live in the
 * unified simulation core as `SimNode` (src/sim/node.hh); a serving
 * node is exactly that machinery, so `ServeNode` is an alias and
 * `NodeProfile` is re-exported from the core. Only the profile
 * constructors remain serve-side sugar.
 */

#ifndef DYSTA_SERVE_NODE_HH
#define DYSTA_SERVE_NODE_HH

#include "sim/node.hh"

namespace dysta {

/** A serving node is a simulation-core node. */
using ServeNode = SimNode;

} // namespace dysta

#endif // DYSTA_SERVE_NODE_HH
