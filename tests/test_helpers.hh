/**
 * @file
 * Shared helpers for scheduler/engine tests: hand-built traces with
 * exact layer latencies, and LUTs derived from them.
 */

#ifndef DYSTA_TESTS_TEST_HELPERS_HH
#define DYSTA_TESTS_TEST_HELPERS_HH

#include <memory>
#include <string>
#include <vector>

#include "core/model_info.hh"
#include "sched/request.hh"
#include "trace/trace.hh"
#include "util/logging.hh"

namespace dysta::test {

/** Build one trace with the given per-layer latencies/sparsities. */
inline SampleTrace
trace(std::vector<double> latencies, std::vector<double> sparsities)
{
    SampleTrace s;
    for (size_t i = 0; i < latencies.size(); ++i) {
        double sp = i < sparsities.size() ? sparsities[i] : 0.5;
        s.layers.push_back({latencies[i], sp});
    }
    s.finalize();
    return s;
}

/**
 * A synthetic world: named models with fixed per-layer latencies.
 * Each model's trace pool holds a single sample, so the LUT averages
 * equal the ground truth (estimators are exact unless tests add
 * deviating samples).
 */
class World
{
  public:
    /** Register a model with one representative trace. */
    void
    addModel(const std::string& name, std::vector<double> latencies,
             std::vector<double> sparsities = {})
    {
        auto set = std::make_unique<TraceSet>(
            name, ModelFamily::CNN, SparsityPattern::Dense);
        set->add(trace(std::move(latencies), std::move(sparsities)));
        lut.addFromTrace(*set);
        sets.push_back(std::move(set));
    }

    /** Register a model with several trace samples. */
    void
    addModelSamples(const std::string& name,
                    std::vector<SampleTrace> samples)
    {
        auto set = std::make_unique<TraceSet>(
            name, ModelFamily::CNN, SparsityPattern::Dense);
        for (auto& s : samples)
            set->add(std::move(s));
        lut.addFromTrace(*set);
        sets.push_back(std::move(set));
    }

    /** Create a request for the model's sample_idx-th trace. */
    Request
    request(int id, const std::string& name, double arrival,
            double slo_mult = 10.0, size_t sample_idx = 0)
    {
        for (const auto& set : sets) {
            if (set->modelName() == name) {
                return makeRequest(id, name, SparsityPattern::Dense,
                                   set->sample(sample_idx), arrival,
                                   slo_mult, set->avgTotalLatency());
            }
        }
        fatal("test World: unknown model " + name);
    }

    ModelInfoLut lut;
    std::vector<std::unique_ptr<TraceSet>> sets;
};

} // namespace dysta::test

#endif // DYSTA_TESTS_TEST_HELPERS_HH
