#include "obs/chrome_trace.hh"

#include <fstream>

#include "util/json.hh"
#include "util/logging.hh"

namespace dysta {

namespace {

constexpr double kMicrosPerSec = 1e6;

std::string
nodeName(const std::vector<std::string>& names, int node)
{
    if (node >= 0 && static_cast<size_t>(node) < names.size() &&
        !names[static_cast<size_t>(node)].empty())
        return names[static_cast<size_t>(node)];
    return "node" + std::to_string(node);
}

/** A contiguous run of layers one request executes on one node. */
struct OpenSegment
{
    int request = -1;
    double start = 0.0;
    /** End of the last *completed* layer (failures lose the rest). */
    double end = 0.0;
    int firstLayer = -1;
    int lastLayer = -1;
};

void
emitSlice(JsonWriter& json, int node, const OpenSegment& seg)
{
    // A segment whose first layer never completed (the node failed
    // mid-layer) has zero recorded extent: nothing to draw.
    if (seg.lastLayer < seg.firstLayer || seg.end <= seg.start)
        return;
    json.beginObject();
    json.field("name", "req " + std::to_string(seg.request));
    json.field("cat", "exec");
    json.field("ph", "X");
    json.field("ts", seg.start * kMicrosPerSec);
    json.field("dur", (seg.end - seg.start) * kMicrosPerSec);
    json.field("pid", 0);
    json.field("tid", node);
    json.beginObject("args");
    json.field("request", seg.request);
    json.field("first_layer", seg.firstLayer);
    json.field("last_layer", seg.lastLayer);
    json.endObject();
    json.endObject();
}

void
emitInstant(JsonWriter& json, const std::string& name, double ts,
            int tid, bool global_scope, int request)
{
    json.beginObject();
    json.field("name", name);
    json.field("cat", "lifecycle");
    json.field("ph", "i");
    json.field("s", global_scope ? "g" : "t");
    json.field("ts", ts * kMicrosPerSec);
    json.field("pid", 0);
    json.field("tid", tid < 0 ? 0 : tid);
    if (request >= 0) {
        json.beginObject("args");
        json.field("request", request);
        json.endObject();
    }
    json.endObject();
}

/**
 * Emit the full trace document into `json`. When `stream` is set,
 * buffered text is drained to it periodically, so the export runs in
 * bounded memory (the drained chunks plus the final tail concatenate
 * to exactly the undrained document).
 */
void
emitChromeTrace(const Telemetry& telemetry,
                const std::vector<std::string>& node_names,
                JsonWriter& json, std::ostream* stream)
{
    fatalIf(!telemetry.config().recordEvents,
            "chromeTraceJson: telemetry ran without event recording");

    constexpr size_t kFlushEvery = 256;
    size_t emitted = 0;
    auto flush = [&]() {
        if (stream != nullptr && ++emitted % kFlushEvery == 0)
            *stream << json.drain();
    };

    json.beginObject();
    json.field("displayTimeUnit", "ms");
    json.beginArray("traceEvents");

    // Track names first, one metadata event per node.
    size_t num_nodes = telemetry.nodes().size();
    for (size_t node = 0; node < num_nodes; ++node) {
        json.beginObject();
        json.field("name", "thread_name");
        json.field("ph", "M");
        json.field("pid", 0);
        json.field("tid", static_cast<int>(node));
        json.beginObject("args");
        json.field("name",
                   nodeName(node_names, static_cast<int>(node)));
        json.endObject();
        json.endObject();
    }

    // One pass over the deterministic event log: merge per-layer
    // executions into slices, everything else becomes instants.
    // orderedEvents() undoes the ring rotation when a retention cap
    // was active (--chrome-trace on megascale runs).
    std::vector<OpenSegment> open(num_nodes);
    auto closeSegment = [&](int node) {
        OpenSegment& seg = open[static_cast<size_t>(node)];
        if (seg.request >= 0)
            emitSlice(json, node, seg);
        seg = OpenSegment{};
    };

    for (const TelemetryEvent& ev : telemetry.orderedEvents()) {
        switch (ev.kind) {
          case TeleKind::ExecStart: {
            OpenSegment& seg = open[static_cast<size_t>(ev.node)];
            if (seg.request != ev.request) {
                closeSegment(ev.node);
                seg.request = ev.request;
                seg.start = ev.time;
                seg.end = ev.time;
                seg.firstLayer = ev.layer;
                seg.lastLayer = ev.layer - 1;
            }
            break;
          }
          case TeleKind::LayerComplete: {
            OpenSegment& seg = open[static_cast<size_t>(ev.node)];
            if (seg.request == ev.request) {
                seg.end = ev.time;
                seg.lastLayer = ev.layer;
            }
            break;
          }
          case TeleKind::Complete:
            closeSegment(ev.node);
            break;
          case TeleKind::Preempt:
            // The block boundary where the switch happened: close
            // the preempted request's segment so the preemptor's
            // slice starts fresh.
            closeSegment(ev.node);
            emitInstant(json, "preempt", ev.time, ev.node, false,
                        ev.request);
            break;
          case TeleKind::Shed:
            emitInstant(json, "shed", ev.time, 0, true, ev.request);
            break;
          case TeleKind::Migrate:
            emitInstant(json, "migrate", ev.time, ev.node, false,
                        ev.request);
            break;
          case TeleKind::Restart:
            emitInstant(json, "restart", ev.time, ev.node, false,
                        ev.request);
            break;
          case TeleKind::NodeDrain:
            emitInstant(json, "drain", ev.time, ev.node, false, -1);
            break;
          case TeleKind::NodeFail:
            closeSegment(ev.node);
            emitInstant(json, "fail", ev.time, ev.node, false, -1);
            break;
          case TeleKind::NodeRecover:
            emitInstant(json, "recover", ev.time, ev.node, false, -1);
            break;
          case TeleKind::Timeout:
            emitInstant(json, "timeout", ev.time, ev.node, false,
                        ev.request);
            break;
          case TeleKind::Retry:
            emitInstant(json, "retry", ev.time, 0, true, ev.request);
            break;
          case TeleKind::Hedge:
            emitInstant(json, "hedge", ev.time, ev.node, false,
                        ev.request);
            break;
          case TeleKind::HedgeCancel:
            emitInstant(json, "hedge_cancel", ev.time, ev.node,
                        false, ev.request);
            break;
          case TeleKind::Brownout:
            emitInstant(json, "brownout", ev.time, 0, true,
                        ev.request);
            break;
          case TeleKind::BatchForm:
            emitInstant(json, "batch_form", ev.time, ev.node, false,
                        ev.request);
            break;
          case TeleKind::BatchJoin:
            emitInstant(json, "batch_join", ev.time, ev.node, false,
                        ev.request);
            break;
          case TeleKind::Arrival:
          case TeleKind::Dispatch:
            break;
        }
        flush();
    }
    for (size_t node = 0; node < num_nodes; ++node)
        closeSegment(static_cast<int>(node));

    // Queue-depth counter tracks from the per-node series.
    if (telemetry.config().recordSeries) {
        for (size_t node = 0; node < num_nodes; ++node) {
            std::string track =
                "queue " + nodeName(node_names,
                                    static_cast<int>(node));
            for (const NodeSample& s :
                 telemetry.orderedSamples(node)) {
                json.beginObject();
                json.field("name", track);
                json.field("ph", "C");
                json.field("ts", s.time * kMicrosPerSec);
                json.field("pid", 0);
                json.field("tid", static_cast<int>(node));
                json.beginObject("args");
                json.field("depth", s.queueDepth);
                json.endObject();
                json.endObject();
                flush();
            }
        }
    }

    json.endArray();
    json.endObject();
}

} // namespace

std::string
chromeTraceJson(const Telemetry& telemetry,
                const std::vector<std::string>& node_names)
{
    JsonWriter json;
    emitChromeTrace(telemetry, node_names, json, nullptr);
    return json.str();
}

void
writeChromeTrace(const Telemetry& telemetry,
                 const std::vector<std::string>& node_names,
                 const std::string& path)
{
    std::ofstream out(path);
    fatalIf(!out, "writeChromeTrace: cannot open '" + path + "'");
    // Streaming write: chunks drain to the file as the document is
    // emitted, so even a megascale trace never materializes in one
    // string (pair with TelemetryConfig::maxEvents to also bound the
    // retained log).
    JsonWriter json;
    emitChromeTrace(telemetry, node_names, json, &out);
    out << json.str() << "\n";
    fatalIf(!out.good(),
            "writeChromeTrace: write failed for '" + path + "'");
}

} // namespace dysta
