/**
 * @file
 * Table 2 reproduction: relative range of network sparsity (the
 * layer-averaged activation sparsity of one input, ranged over the
 * input population and normalized by its mean) for GoogLeNet,
 * VGG-16, InceptionV3 and ResNet-50 on the ImageNet + ExDark +
 * DarkFace mixture.
 *
 * Paper reference: GoogLeNet 28.3%, VGG-16 21.8%, InceptionV3 23.0%,
 * ResNet-50 15.1%.
 *
 * Usage: tab02_network_sparsity_range [--samples N]
 */

#include <cstdio>

#include "exp/experiments.hh"
#include "models/zoo.hh"
#include "sparsity/activation_model.hh"
#include "util/args.hh"
#include "util/stats.hh"
#include "util/table.hh"

using namespace dysta;

int
main(int argc, char** argv)
{
    ArgParser args("tab02_network_sparsity_range",
                   "Table 2 reproduction: whole-network sparsity ranges.");
    args.addInt("--samples", 2000, "profiled samples");
    args.parse(argc, argv);
    int samples = args.getInt("--samples");

    struct Row { const char* model; double paper; };
    const Row rows[] = {
        {"googlenet", 28.3},
        {"vgg16", 21.8},
        {"inceptionv3", 23.0},
        {"resnet50", 15.1},
    };

    AsciiTable t("Table 2: relative range of network sparsity");
    t.setHeader({"model", "measured [%]", "paper [%]", "mean sparsity"});
    for (const Row& row : rows) {
        ModelDesc model = makeModelByName(row.model);
        CnnActivationModel act(model, imagenetWithDarkProfile(), 13);
        Rng rng(7);
        OnlineStats net;
        for (int i = 0; i < samples; ++i)
            net.add(act.sample(rng).networkSparsity());
        t.addRow({row.model,
                  AsciiTable::num(net.relativeRange() * 100.0, 1),
                  AsciiTable::num(row.paper, 1),
                  AsciiTable::num(net.mean(), 3)});
    }
    t.print();
    return 0;
}
