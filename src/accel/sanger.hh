/**
 * @file
 * Analytical Sanger performance model for dynamically sparse AttNNs.
 *
 * Sanger (Lu et al., MICRO'21) predicts the attention mask with a
 * low-precision Q.K pass, then packs the surviving entries into a
 * load-balanced reconfigurable systolic array. Dense projections
 * (QKV / output / FFN) run as regular GEMMs; the score and context
 * stages scale with the per-sample mask density at a pack-and-split
 * efficiency below 1, plus the mask-prediction overhead.
 */

#ifndef DYSTA_ACCEL_SANGER_HH
#define DYSTA_ACCEL_SANGER_HH

#include "accel/accelerator.hh"
#include "models/model.hh"
#include "sparsity/attention_model.hh"
#include "util/rng.hh"

namespace dysta {

/** Sanger hardware configuration. */
struct SangerConfig
{
    /** MAC units in the reconfigurable systolic array. */
    int peCount = 1024;
    /** Core clock. */
    double clockHz = 530e6;
    /** GEMM efficiency of dense projections on the array. */
    double denseEfficiency = 0.75;
    /** Pack-and-split efficiency for mask-sparse stages. */
    double sparseEfficiency = 0.85;
    /**
     * Mask-prediction overhead: low-precision Q.K pass cost as a
     * fraction of the dense score-stage cost.
     */
    double maskPredictOverhead = 0.15;
    /** Minimum mask density the packed array can exploit. */
    double minMaskDensity = 0.05;
    /** Per-layer configuration overhead in cycles. */
    double layerOverheadCycles = 1500;
};

/** Analytical latency model for one AttNN on Sanger. */
class SangerModel
{
  public:
    explicit SangerModel(SangerConfig config = {});

    const SangerConfig& config() const { return cfg; }

    /** Execute one layer block of the model for one prompt. */
    LayerRun runLayer(const ModelDesc& model, size_t layer,
                      const AttnSample& sample) const;

    /** Uninterrupted whole-model latency for one prompt (seconds). */
    double isolatedLatency(const ModelDesc& model,
                           const AttnSample& sample) const;

  private:
    SangerConfig cfg;
};

} // namespace dysta

#endif // DYSTA_ACCEL_SANGER_HH
