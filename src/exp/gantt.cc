#include "exp/gantt.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>

#include "util/logging.hh"

namespace dysta {

std::string
renderGantt(const std::vector<ScheduleEvent>& events,
            const std::vector<Request>& requests, GanttConfig config)
{
    if (events.empty())
        return "(no schedule events recorded)\n";
    panicIf(config.columns == 0, "renderGantt: zero columns");

    double t0 = config.windowStart;
    double t1 = config.windowEnd;
    if (t1 <= t0) {
        t1 = 0.0;
        for (const auto& ev : events)
            t1 = std::max(t1, ev.end);
    }
    double span = t1 - t0;
    if (span <= 0.0)
        return "(empty time window)\n";

    // Busy time per request inside the window, for row selection.
    std::map<int, double> busy;
    for (const auto& ev : events) {
        double lo = std::max(ev.start, t0);
        double hi = std::min(ev.end, t1);
        if (hi > lo)
            busy[ev.requestId] += hi - lo;
    }
    std::vector<std::pair<int, double>> rows(busy.begin(), busy.end());
    std::stable_sort(rows.begin(), rows.end(),
                     [](const auto& a, const auto& b) {
                         return a.second > b.second;
                     });
    if (rows.size() > config.maxRows)
        rows.resize(config.maxRows);
    std::sort(rows.begin(), rows.end());

    std::map<int, const Request*> by_id;
    for (const auto& req : requests)
        by_id[req.id] = &req;

    double col_width = span / static_cast<double>(config.columns);
    char head[96];
    std::snprintf(head, sizeof(head),
                  "Gantt %.4fs .. %.4fs (col = %.4fs)\n", t0, t1,
                  col_width);
    std::string out = head;

    for (const auto& [id, busy_time] : rows) {
        (void)busy_time;
        std::string lane(config.columns, '.');
        for (const auto& ev : events) {
            if (ev.requestId != id)
                continue;
            double lo = std::max(ev.start, t0);
            double hi = std::min(ev.end, t1);
            if (hi <= lo)
                continue;
            auto c0 = static_cast<size_t>((lo - t0) / col_width);
            // An event ending exactly on a column boundary does not
            // own that column.
            double hi_cols = (hi - t0) / col_width;
            auto c1 = static_cast<size_t>(
                std::max(std::ceil(hi_cols) - 1.0, 0.0));
            c0 = std::min(c0, config.columns - 1);
            c1 = std::min(std::max(c1, c0), config.columns - 1);
            for (size_t c = c0; c <= c1; ++c)
                lane[c] = '#';
        }
        const Request* req = by_id.count(id) ? by_id.at(id) : nullptr;
        char label[64];
        std::snprintf(label, sizeof(label), "%4d %-10s |", id,
                      req ? req->modelName.c_str() : "?");
        out += label + lane + "|\n";
    }
    return out;
}

} // namespace dysta
