// Fixture: unseeded / platform-dependent randomness in scanned code.
#include <cstdlib>
#include <random>

int drawJitter()
{
    std::random_device rd;
    std::mt19937 gen(rd());
    std::uniform_int_distribution<int> dist(0, 9);
    return dist(gen) + rand() % 3;
}
