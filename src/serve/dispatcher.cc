#include "serve/dispatcher.hh"

#include <unordered_set>

#include "util/logging.hh"

namespace dysta {

size_t
RoundRobinDispatcher::selectNode(
    const Request& req,
    const std::vector<std::unique_ptr<ServeNode>>& nodes, double now)
{
    (void)req;
    (void)now;
    panicIf(nodes.empty(), "RoundRobinDispatcher: no nodes");
    // Rotate past unavailable nodes; the core guarantees at least
    // one node is available, so this terminates.
    for (size_t attempts = 0; attempts <= nodes.size(); ++attempts) {
        size_t idx = static_cast<size_t>(next++ % nodes.size());
        if (nodes[idx]->available())
            return idx;
    }
    panic("RoundRobinDispatcher: no available node");
}

size_t
LeastOutstandingDispatcher::selectNode(
    const Request& req,
    const std::vector<std::unique_ptr<ServeNode>>& nodes, double now)
{
    (void)req;
    (void)now;
    panicIf(nodes.empty(), "LeastOutstandingDispatcher: no nodes");
    size_t best = nodes.size();
    for (size_t i = 0; i < nodes.size(); ++i) {
        if (!nodes[i]->available())
            continue;
        // Strict < keeps the lowest-id node on ties.
        if (best == nodes.size() ||
            nodes[i]->outstanding() < nodes[best]->outstanding())
            best = i;
    }
    panicIf(best == nodes.size(),
            "LeastOutstandingDispatcher: no available node");
    return best;
}

EstimatorDispatcher::EstimatorDispatcher(const ModelInfoLut& lut,
                                         PredictorConfig predictor_cfg,
                                         bool sparsity_aware)
{
    if (sparsity_aware) {
        est = std::make_unique<DystaEstimator>(lut, predictor_cfg,
                                               /*refine=*/true);
    } else {
        est = std::make_unique<LutEstimator>(lut);
    }
}

void
EstimatorDispatcher::reset()
{
    est->reset();
}

void
EstimatorDispatcher::onLayerComplete(const ServeNode& node,
                                     const Request& req, double now,
                                     double monitored_sparsity)
{
    (void)node;
    (void)now;
    est->observe(req, monitored_sparsity);
}

void
EstimatorDispatcher::onComplete(const ServeNode& node,
                                const Request& req, double now)
{
    (void)node;
    (void)now;
    est->release(req);
}

void
EstimatorDispatcher::onShed(const Request& req, double now)
{
    (void)now;
    est->release(req);
}

void
EstimatorDispatcher::onCancel(const Request& req, double now)
{
    // The cancelled attempt's refinement state is void; a retry
    // re-admits through selectNode (admit/release are idempotent by
    // request id, so the lifecycle stays balanced).
    (void)now;
    est->release(req);
}

LeastBacklogDispatcher::LeastBacklogDispatcher(
    const ModelInfoLut& lut, PredictorConfig predictor_cfg,
    bool sparsity_aware)
    : EstimatorDispatcher(lut, predictor_cfg, sparsity_aware),
      sparsityAware(sparsity_aware)
{
}

std::string
LeastBacklogDispatcher::name() const
{
    return sparsityAware ? "least-backlog" : "least-backlog-lut";
}

double
LeastBacklogDispatcher::estRemaining(const Request& req) const
{
    return est->remaining(req);
}

double
LeastBacklogDispatcher::backlogEstimate(const ServeNode& node) const
{
    double work = 0.0;
    for (const Request* req : node.queue())
        work += estRemaining(*req);
    return work / node.profile().speedFactor;
}

size_t
LeastBacklogDispatcher::selectNode(
    const Request& req,
    const std::vector<std::unique_ptr<ServeNode>>& nodes, double now)
{
    (void)now;
    panicIf(nodes.empty(), "LeastBacklogDispatcher: no nodes");

    double iso = est->isolated(req);
    size_t best = nodes.size();
    double best_score = 0.0;
    for (size_t i = 0; i < nodes.size(); ++i) {
        if (!nodes[i]->available())
            continue;
        // Backlog already on the node plus the candidate itself, in
        // node-seconds: a fast node absorbs the same queue sooner.
        double score = backlogEstimate(*nodes[i]) +
                       iso / nodes[i]->profile().speedFactor;
        if (best == nodes.size() || score < best_score) {
            best = i;
            best_score = score;
        }
    }
    panicIf(best == nodes.size(),
            "LeastBacklogDispatcher: no available node");

    est->admit(req);
    return best;
}

// --- CapabilityAwareDispatcher ---------------------------------------------

CapabilityAwareDispatcher::CapabilityAwareDispatcher(
    const ModelInfoLut& lut, PredictorConfig predictor_cfg,
    bool sparsity_aware)
    : EstimatorDispatcher(lut, predictor_cfg, sparsity_aware)
{
}

const ScaledEstimator&
CapabilityAwareDispatcher::viewFor(const NodeCapability& cap)
{
    auto it = views.find(cap.speedFactor);
    if (it == views.end()) {
        it = views
                 .emplace(cap.speedFactor,
                          std::make_unique<ScaledEstimator>(
                              *est, cap.speedFactor))
                 .first;
    }
    return *it->second;
}

const ScaledEstimator&
CapabilityAwareDispatcher::nodeView(const ServeNode& node)
{
    return viewFor(node.capability());
}

double
CapabilityAwareDispatcher::backlogOn(const ServeNode& node)
{
    const ScaledEstimator& view = nodeView(node);
    double work = 0.0;
    for (const Request* req : node.queue())
        work += view.remaining(*req);
    return work;
}

size_t
CapabilityAwareDispatcher::selectNode(
    const Request& req,
    const std::vector<std::unique_ptr<ServeNode>>& nodes, double now)
{
    (void)now;
    panicIf(nodes.empty(), "CapabilityAwareDispatcher: no nodes");

    size_t best = nodes.size();
    double best_score = 0.0;
    for (size_t i = 0; i < nodes.size(); ++i) {
        NodeCapability cap = nodes[i]->capability();
        if (!cap.available)
            continue;
        // Estimated completion in node-local seconds: the backlog
        // ahead plus the candidate's own isolated latency on this
        // node class. Strict < keeps the lowest-id node on ties.
        double score =
            backlogOn(*nodes[i]) + viewFor(cap).isolated(req);
        if (best == nodes.size() || score < best_score) {
            best = i;
            best_score = score;
        }
    }
    panicIf(best == nodes.size(),
            "CapabilityAwareDispatcher: no available node");

    est->admit(req);
    return best;
}

// --- WorkStealingDispatcher -------------------------------------------------

WorkStealingDispatcher::WorkStealingDispatcher(
    const ModelInfoLut& lut, WorkStealingConfig steal_cfg,
    PredictorConfig predictor_cfg, bool sparsity_aware)
    : CapabilityAwareDispatcher(lut, predictor_cfg, sparsity_aware),
      cfg(steal_cfg)
{
    fatalIf(cfg.imbalanceRatio < 1.0,
            "WorkStealingDispatcher: imbalance ratio must be >= 1");
}

std::vector<Migration>
WorkStealingDispatcher::rebalance(
    const std::vector<std::unique_ptr<ServeNode>>& nodes, double now)
{
    (void)now;
    std::vector<Migration> moves;
    if (nodes.size() < 2)
        return moves;
    std::unordered_set<int> proposed;

    // Node-local estimated backlogs, kept incrementally consistent
    // with the proposed moves so one cycle converges instead of
    // bouncing the same request around.
    std::vector<double> backlog(nodes.size(), 0.0);
    std::vector<bool> stealable(nodes.size(), false);
    size_t num_available = 0;
    for (size_t i = 0; i < nodes.size(); ++i) {
        if (!nodes[i]->available())
            continue;
        ++num_available;
        backlog[i] = backlogOn(*nodes[i]);
        stealable[i] = true;
    }
    if (num_available < 2)
        return moves;

    while (moves.size() < cfg.maxMovesPerCycle) {
        // Most-loaded stealable node and least-loaded available
        // node, both with lowest-id tie-breaks (scan order).
        size_t imax = nodes.size();
        size_t imin = nodes.size();
        for (size_t i = 0; i < nodes.size(); ++i) {
            if (!nodes[i]->available())
                continue;
            if (stealable[i] &&
                (imax == nodes.size() || backlog[i] > backlog[imax]))
                imax = i;
            if (imin == nodes.size() || backlog[i] < backlog[imin])
                imin = i;
        }
        if (imax == nodes.size() || imax == imin)
            break;
        if (backlog[imax] <= cfg.imbalanceRatio * backlog[imin] ||
            backlog[imax] - backlog[imin] <= cfg.minImbalanceSec)
            break;

        // Steal LIFO: the most recently placed request that has not
        // started (and is not in flight) leaves first. Requests
        // already proposed this cycle still sit in their old node's
        // queue (moves apply after the hook returns), so skip them.
        Request* victim = nullptr;
        const auto& queue = nodes[imax]->queue();
        for (size_t k = queue.size(); k-- > 0;) {
            Request* req = queue[k];
            if (req->nextLayer == 0 &&
                req != nodes[imax]->current() &&
                proposed.count(req->id) == 0) {
                victim = req;
                break;
            }
        }
        if (victim == nullptr) {
            // Everything on the heavy node already started; it can
            // not shed load this cycle.
            stealable[imax] = false;
            continue;
        }

        // Profitability guard for heterogeneous fleets: moving to a
        // slow node is only a win if the victim still finishes
        // earlier there (destination backlog + its node-local
        // latency) than waiting out the heavy node's queue.
        double stay = backlog[imax];
        double move = backlog[imin] +
                      nodeView(*nodes[imin]).remaining(*victim);
        if (move >= stay) {
            stealable[imax] = false;
            continue;
        }

        moves.push_back({victim, imax, imin});
        proposed.insert(victim->id);
        backlog[imax] -= nodeView(*nodes[imax]).remaining(*victim);
        backlog[imin] += nodeView(*nodes[imin]).remaining(*victim);
    }
    return moves;
}

} // namespace dysta
